package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/dag"
	"hrtsched/internal/durable"
	"hrtsched/internal/plan"
	"hrtsched/internal/repl"
)

// Cluster is the stateful placement service: a session tracking N
// simulated nodes, each owning a plan.Incremental admission engine behind
// a bounded, batching mutation queue (the same queue/batch/flush shape as
// the Server's shards — one worker goroutine per node, so each engine
// needs no locking). Named task sets are placed onto nodes first-fit or
// worst-fit, every bin decision consulting the incremental analysis;
// sessions can evict sets, drain whole nodes, and rebalance, and every
// outcome is countable through the metrics Registry.
type Cluster struct {
	cfg   ClusterConfig
	nodes []*node

	wg sync.WaitGroup

	// closeMu serializes queue sends against Close, exactly like
	// Server.closeMu.
	closeMu sync.RWMutex
	closed  bool

	// mu guards placements; opMu serializes the multi-step admin
	// operations (drain, rebalance) against each other.
	mu         sync.Mutex
	placements map[string]*placementRec
	opMu       sync.Mutex

	// placeGate fences Place's candidate walk against Drain: every walk
	// holds the read lock, and Drain takes the write lock once after
	// setting a node's draining flag, so any walk that read the stale
	// flag has finished (and its placement is visible) before the drain
	// snapshots the node's sets.
	placeGate sync.RWMutex

	placed     atomic.Int64
	rejected   atomic.Int64
	removed    atomic.Int64
	rebalanced atomic.Int64
	drained    atomic.Int64
	canceled   atomic.Int64
	unmatched  atomic.Int64

	// DAG submission counters. dagPlaced counts committed DAG placements
	// (on apply in replicated mode, identically on every replica); the
	// rest count on the submitting leader only.
	dagSubmitted atomic.Int64
	dagAdmitted  atomic.Int64
	dagRejected  atomic.Int64
	dagPlaced    atomic.Int64

	// store, when non-nil, makes every committed mutation durable before
	// its client reply; recovery holds what boot-time recovery found.
	store    *durable.Store
	recovery durable.RecoveryResult

	// Replicated mode (cfg.Replication non-nil): repl is the consensus
	// node, rstore the snapshot-only shadow store. replBoot closes once
	// repl is assigned, so consensus callbacks can run during boot.
	// replReadyTerm holds the last term whose leader ramp (log catch-up
	// plus orphan reconciliation) completed on this replica.
	repl           *repl.Node
	rstore         *durable.ReplStore
	replBoot       chan struct{}
	replReadyTerm  atomic.Uint64
	redirects      atomic.Int64
	replSkipped    atomic.Int64
	orphanReleases atomic.Int64
}

type placementRec struct {
	node    int
	set     plan.TaskSet
	util    float64
	dag     *durable.DAGMeta // provenance when the placement is a DAG reservation
	pending bool             // a mutation for this id is in flight
	// committed marks (replicated mode) that the consensus apply loop has
	// folded this id's place record in: an indeterminate reply must not
	// delete a placement the replicated log already holds.
	committed bool
}

// Policy selects how Place orders candidate nodes.
type Policy uint8

const (
	// FirstFit tries nodes in index order and takes the first that
	// admits the set.
	FirstFit Policy = iota
	// WorstFit tries the least-utilized node first, spreading load.
	WorstFit
)

// String names the policy with its flag spelling.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ParsePolicy parses a policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "first-fit":
		return FirstFit, nil
	case "worst-fit":
		return WorstFit, nil
	default:
		return 0, fmt.Errorf("serve: unknown placement policy %q (want first-fit or worst-fit)", s)
	}
}

// ClusterConfig parameterizes a Cluster. Zero fields take defaults.
type ClusterConfig struct {
	// Spec is the per-node platform model every admission runs against.
	Spec plan.Spec
	// Analysis is the admission analysis every node engine dispatches
	// through; default the registered plan.DefaultAnalysisName plug-in
	// (EDF utilization bound + hyperperiod simulation) for Spec. A non-nil
	// Analysis must report the same Spec.
	Analysis plan.Analysis
	// Nodes is the number of simulated nodes; default 4.
	Nodes int
	// Policy selects candidate-node ordering; default FirstFit.
	Policy Policy
	// QueueDepth bounds each node's mutation queue; default 256.
	QueueDepth int
	// BatchSize caps how many mutations one flush applies; default 32.
	BatchSize int
	// FlushWindow sizes the retry-after quote handed to shed clients;
	// default 200 us. Node workers drain their queues greedily and never
	// wait on it: a lone mutation commits immediately, and batches form
	// exactly when mutations queue faster than the node applies them.
	FlushWindow time.Duration
	// MaxBatchItems caps the item count of one /v1/cluster/place-batch
	// request; larger batches answer 400 quoting the cap, so a router
	// sizing sub-batches can discover it. Default DefaultMaxBatchItems.
	MaxBatchItems int
	// Durability, when non-nil, persists every committed mutation to a
	// write-ahead log under Durability.Dir and recovers it at startup.
	Durability *DurabilityConfig
	// Replication, when non-nil, replicates the write-ahead log to peer
	// replicas and acknowledges mutations only on a majority fsync.
	// Requires Durability.
	Replication *ReplicationConfig
}

func (c *ClusterConfig) fillDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.FlushWindow == 0 {
		c.FlushWindow = 200 * time.Microsecond
	}
	if c.MaxBatchItems == 0 {
		c.MaxBatchItems = DefaultMaxBatchItems
	}
	if c.Analysis == nil {
		c.Analysis = plan.DefaultEDF(c.Spec)
	}
}

// Validate rejects nonsensical settings.
func (c ClusterConfig) Validate() error {
	if c.Nodes < 0 || c.QueueDepth < 0 || c.BatchSize < 0 || c.FlushWindow < 0 || c.MaxBatchItems < 0 {
		return fmt.Errorf("serve: negative cluster config value: %+v", c)
	}
	if c.Policy != FirstFit && c.Policy != WorstFit {
		return fmt.Errorf("serve: unknown placement policy %d", c.Policy)
	}
	if c.Spec.OverheadNs < 0 {
		return fmt.Errorf("serve: negative overhead %dns", c.Spec.OverheadNs)
	}
	if c.Spec.UtilizationLimit <= 0 || c.Spec.UtilizationLimit > 1 {
		return fmt.Errorf("serve: utilization limit %g outside (0,1]", c.Spec.UtilizationLimit)
	}
	if c.Analysis != nil && c.Analysis.Spec() != c.Spec {
		return fmt.Errorf("serve: analysis %q spec %+v disagrees with cluster spec %+v",
			c.Analysis.Name(), c.Analysis.Spec(), c.Spec)
	}
	if c.Durability != nil && c.Durability.Dir == "" {
		return errors.New("serve: Durability.Dir is required when durability is enabled")
	}
	if r := c.Replication; r != nil {
		if c.Durability == nil {
			return errors.New("serve: Replication requires Durability")
		}
		if r.Replicas < 1 {
			return fmt.Errorf("serve: Replication.Replicas %d, want >= 1", r.Replicas)
		}
		if r.ID < 0 || r.ID >= r.Replicas {
			return fmt.Errorf("serve: Replication.ID %d outside [0,%d)", r.ID, r.Replicas)
		}
		if r.Transport == nil && r.Replicas > 1 && len(r.Peers) == 0 {
			return errors.New("serve: Replication.Peers is required without a custom transport")
		}
	}
	return nil
}

type mutOp uint8

const (
	placeOp mutOp = iota
	removeOp
	// evalOp answers EvaluateGang against the node's committed state
	// without mutating anything — the what-if probe the shard router uses
	// before committing a cross-group migration. Never logged or
	// replicated: it changes nothing.
	evalOp
)

type mutation struct {
	ctx context.Context
	op  mutOp
	set plan.TaskSet
	// id and origin identify the mutation in the write-ahead log; unused
	// (but still set) when durability is off.
	id     string
	origin durable.Origin
	// dag, when non-nil, marks a place as a DAG reservation: the record is
	// logged as KindPlaceDAG carrying this provenance.
	dag  *durable.DAGMeta
	done chan mutResult
}

type mutResult struct {
	verdict plan.Verdict
	// err, when non-nil, is a replicated-mode commit failure: the record
	// was not (knowably) committed, so the verdict is meaningless.
	err error
	// matched is true when the mutation changed the engine as intended:
	// always for an applied place, and only when RemoveGang actually
	// found the set for a remove. A false matched on a remove means the
	// placement map and the engine disagreed — state divergence the
	// caller must surface, never absorb.
	matched  bool
	canceled bool
}

type node struct {
	id int
	ch chan *mutation
	// eng is created through the configured plan.Analysis, so every
	// cluster verdict dispatches through the interface.
	eng plan.Engine
	// engMu guards eng in replicated mode only, where the consensus apply
	// loop mutates it alongside the worker's evaluation pass. Single-node
	// mode never locks it: the worker is the only engine toucher.
	engMu sync.Mutex

	utilBits atomic.Uint64 // math.Float64bits of the node's utilization
	tasks    atomic.Int64
	sets     atomic.Int64
	draining atomic.Bool

	shed     atomic.Int64
	applied  atomic.Int64
	batches  atomic.Int64
	canceled atomic.Int64
	incOps   atomic.Int64 // engine's incremental-path verdicts
	fullOps  atomic.Int64 // engine's full-analysis fallbacks
}

func (n *node) utilization() float64 { return math.Float64frombits(n.utilBits.Load()) }

// syncGauges refreshes the node's published gauges from its engine.
func (n *node) syncGauges() {
	n.utilBits.Store(math.Float64bits(n.eng.Utilization()))
	n.tasks.Store(int64(n.eng.Len()))
	st := n.eng.Stats()
	n.incOps.Store(st.IncrementalOps)
	n.fullOps.Store(st.FullAnalyses)
}

// Errors returned by cluster session operations.
var (
	ErrClusterClosed = errors.New("serve: cluster closed")
	ErrDuplicateID   = errors.New("serve: placement id already in use")
	ErrUnknownID     = errors.New("serve: unknown placement id")
	ErrUnknownNode   = errors.New("serve: unknown node")
	ErrPendingID     = errors.New("serve: placement id has a mutation in flight")
	// ErrLostPlacement reports that a placement record's set was not
	// found on its recorded node: the session's map and the node's
	// engine diverged. The stale record is dropped and the divergence
	// counted in hrtd_cluster_unmatched_removals_total.
	ErrLostPlacement = errors.New("serve: placement not found on its node (state divergence)")
)

// NewCluster starts a placement session with cfg's node workers running.
// With cfg.Durability set it first recovers the previous session from
// disk — load snapshot, replay the WAL suffix, reconcile orphans — before
// any worker accepts a mutation. Close releases them.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	c, err := newCluster(cfg)
	if err != nil {
		return nil, err
	}
	switch {
	case c.cfg.Replication != nil:
		if err := c.openReplication(); err != nil {
			return nil, err
		}
	case c.cfg.Durability != nil:
		if err := c.openDurability(); err != nil {
			return nil, err
		}
	}
	for _, n := range c.nodes {
		c.wg.Add(1)
		go c.runNode(n)
	}
	return c, nil
}

// newCluster builds the cluster without starting node workers; tests use
// it to exercise queue-full and cancellation behaviour deterministically.
func newCluster(cfg ClusterConfig) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	c := &Cluster{
		cfg:        cfg,
		nodes:      make([]*node, cfg.Nodes),
		placements: make(map[string]*placementRec),
		replBoot:   make(chan struct{}),
	}
	for i := range c.nodes {
		c.nodes[i] = &node{
			id:  i,
			ch:  make(chan *mutation, cfg.QueueDepth),
			eng: cfg.Analysis.NewEngine(),
		}
	}
	return c, nil
}

// Config returns the effective configuration after defaulting.
func (c *Cluster) Config() ClusterConfig { return c.cfg }

// Close stops accepting mutations, drains the node queues, and waits for
// the workers to exit. Safe to call more than once.
func (c *Cluster) Close() {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return
	}
	c.closed = true
	c.closeMu.Unlock()
	for _, n := range c.nodes {
		close(n.ch)
	}
	c.wg.Wait()
	if c.store != nil {
		// Workers are gone, so the log is quiescent: a final snapshot
		// makes the next boot replay-free. Errors latch into the store's
		// degraded stats; the WAL alone still carries the state.
		c.store.Close() //nolint:errcheck
	}
	if c.repl != nil {
		// Stop consensus first (no more applies), then cut the final
		// snapshot at the applied position.
		c.repl.Close() //nolint:errcheck
	}
	if c.rstore != nil {
		c.rstore.Close() //nolint:errcheck
	}
}

// PlaceResult reports one placement attempt.
type PlaceResult struct {
	// Placed is true when some node admitted the set.
	Placed bool `json:"placed"`
	// Node is the admitting node, -1 when rejected everywhere.
	Node int `json:"node"`
	// Attempts is the number of nodes consulted.
	Attempts int `json:"attempts"`
	// Verdict is the admitting node's verdict (or the last rejecting
	// node's, when Placed is false).
	Verdict plan.Verdict `json:"verdict"`
}

// errEmptyID rejects placements with no identifier.
var errEmptyID = errors.New("serve: placement id must not be empty")

// Place admits the named task set onto the first node (in policy order)
// whose incremental analysis accepts it. A set every node rejects returns
// Placed=false with a nil error; errors report session problems (closed,
// duplicate id, shed queue, canceled context). Place is a one-item
// PlaceBatch, so single and batched placements share one code path and
// identical per-item behavior.
func (c *Cluster) Place(ctx context.Context, id string, set plan.TaskSet) (PlaceResult, error) {
	res := c.PlaceBatch(ctx, []BatchPlaceItem{{ID: id, Tasks: set}})
	return res[0].Result, res[0].Err
}

// BatchPlaceItem is one candidate placement in a PlaceBatch call.
type BatchPlaceItem struct {
	ID    string       `json:"id"`
	Tasks plan.TaskSet `json:"tasks"`
}

// BatchPlaceResult is one item's outcome in a PlaceBatch envelope: the
// PlaceResult is meaningful when Err is nil, and Err carries the same
// session errors Place returns for a single item.
type BatchPlaceResult struct {
	ID     string
	Result PlaceResult
	Err    error
}

// PlaceBatch admits many task sets in one call, fanning the items out
// across the per-node admission workers concurrently instead of serially
// per mutation. Results are returned in input order and each item's
// outcome is exactly what Place would have returned for it alone.
//
// Ordering guarantees: items within one batch are admitted concurrently,
// so their relative admission order against each other is unspecified —
// but every individual admission is still serialized through the owning
// node's worker, evaluated against that node's committed state at its
// turn, and its verdict is planverify-exact for that state. Duplicate ids
// within the batch are rejected deterministically: the first occurrence
// (in input order) proceeds, later ones fail with ErrDuplicateID without
// racing the first.
func (c *Cluster) PlaceBatch(ctx context.Context, items []BatchPlaceItem) []BatchPlaceResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchPlaceResult, len(items))
	leaderErr := c.leaderCheck()
	seen := make(map[string]bool, len(items))
	// Bound the fan-out so a huge batch cannot flood the per-node queues
	// into shedding everything: a few items in flight per node keeps every
	// worker busy without queue blowout.
	workers := 2 * len(c.nodes)
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range items {
		out[i] = BatchPlaceResult{ID: items[i].ID, Result: PlaceResult{Node: -1}}
		switch {
		case items[i].ID == "":
			out[i].Err = errEmptyID
		case leaderErr != nil:
			out[i].Err = leaderErr
		case seen[items[i].ID]:
			out[i].Err = fmt.Errorf("%w: %q", ErrDuplicateID, items[i].ID)
		default:
			seen[items[i].ID] = true
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				set := append(plan.TaskSet(nil), items[i].Tasks...)
				out[i].Result, out[i].Err = c.placeSet(ctx, items[i].ID, set, nil)
			}(i)
		}
	}
	wg.Wait()
	return out
}

// placeSet is the shared commit path behind Place and PlaceDAG: reserve
// the id, walk candidates, and commit or roll back the placement record.
// meta, when non-nil, marks a DAG reservation (logged as KindPlaceDAG).
func (c *Cluster) placeSet(ctx context.Context, id string, set plan.TaskSet,
	meta *durable.DAGMeta) (PlaceResult, error) {
	c.mu.Lock()
	if _, exists := c.placements[id]; exists {
		c.mu.Unlock()
		return PlaceResult{Node: -1}, fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	rec := &placementRec{node: -1, set: set, dag: meta, pending: true}
	c.placements[id] = rec
	c.mu.Unlock()

	// The read lock pairs with Drain's write-lock barrier: it covers the
	// walk AND the record commit, so once Drain has the barrier, any set
	// this walk landed on the draining node is visible to its snapshot.
	c.placeGate.RLock()
	res, err := c.placeOnCandidates(ctx, id, set, c.candidates(), false, durable.OriginClient, meta)
	c.mu.Lock()
	switch {
	case res.Placed:
		rec.node = res.Node
		rec.util = set.Utilization()
		rec.pending = false
	case rec.committed:
		// Replicated mode: the reply was lost to a leadership change but
		// the apply loop has already folded the committed record in — the
		// placement stands; only the in-flight marker clears. The caller
		// sees an indeterminate error and, on retry, a duplicate-id
		// conflict that confirms the commit.
		rec.pending = false
	default:
		// Guarded: the apply loop may have dropped this rec already (a
		// skipped record) and a retry inserted its own — never delete a
		// successor's entry.
		if c.placements[id] == rec {
			delete(c.placements, id)
		}
	}
	c.mu.Unlock()
	c.placeGate.RUnlock()
	if err == nil && !res.Placed {
		c.rejected.Add(1)
	}
	if res.Placed && c.repl == nil {
		c.placed.Add(1) // replicated mode counts on apply, identically on every replica
		if meta != nil {
			c.dagPlaced.Add(1)
		}
	}
	return res, err
}

// DAGPlaceResult reports one DAG submission: the response-time analysis
// verdict, the derived periodic server reservation, and (when the
// analysis admitted) the placement outcome across the nodes.
type DAGPlaceResult struct {
	// Placed is true when the analysis admitted AND some node reserved
	// the derived server task.
	Placed bool `json:"placed"`
	// Node is the reserving node, -1 otherwise.
	Node int `json:"node"`
	// Attempts is the number of nodes consulted (0 on an analysis reject).
	Attempts int `json:"attempts"`
	// Analysis is the RTA verdict, including the blocking path on reject.
	Analysis dag.Result `json:"analysis"`
	// ServerTask is the derived reservation (period, slice = bound); zero
	// when the analysis rejected.
	ServerTask plan.Task `json:"server_task"`
	// Verdict is the reserving node's admission verdict (or the last
	// rejecting node's when every node refused).
	Verdict plan.Verdict `json:"verdict"`
}

// PlaceDAG admits one periodic DAG task end to end: validate the graph,
// run the named response-time analysis (dag.NewAnalyzer names; ""
// defaults to classical), and — when the bound meets the deadline —
// reserve the derived periodic server task on the first admitting node,
// durably logged as a KindPlaceDAG record so replay and replicas rebuild
// the reservation without re-running the analysis. Structural rejections
// return a *dag.ValidationError; analytical and placement rejections
// return Placed=false with a nil error.
func (c *Cluster) PlaceDAG(ctx context.Context, id string, t dag.Task, analyzer string) (DAGPlaceResult, error) {
	res := DAGPlaceResult{Node: -1}
	if ctx == nil {
		ctx = context.Background()
	}
	if id == "" {
		return res, errEmptyID
	}
	if err := c.leaderCheck(); err != nil {
		return res, err
	}
	rta, err := dag.NewAnalyzer(analyzer)
	if err != nil {
		return res, err
	}
	c.dagSubmitted.Add(1)
	r, err := dag.New(c.cfg.Spec, rta).AnalyzeDAG(&t)
	if err != nil {
		c.dagRejected.Add(1)
		return res, err
	}
	res.Analysis = r
	if !r.Admit {
		c.dagRejected.Add(1)
		return res, nil
	}
	c.dagAdmitted.Add(1)
	res.ServerTask = dag.ServerTask(&t, r)

	meta := &durable.DAGMeta{
		Cores:      t.Cores,
		PeriodNs:   t.PeriodNs,
		DeadlineNs: t.DeadlineNs,
		BoundNs:    r.BoundNs,
		Analyzer:   rta.Name(),
		WCETNs:     make([]int64, len(t.Nodes)),
		Edges:      make([][2]int, len(t.Edges)),
	}
	for i, n := range t.Nodes {
		meta.WCETNs[i] = n.WCETNs
	}
	for i, e := range t.Edges {
		meta.Edges[i] = [2]int{e.From, e.To}
	}
	pres, err := c.placeSet(ctx, id, plan.TaskSet{res.ServerTask}, meta)
	res.Placed, res.Node, res.Attempts, res.Verdict = pres.Placed, pres.Node, pres.Attempts, pres.Verdict
	return res, err
}

// placeOnCandidates walks the candidate nodes in order, returning on the
// first admit. Session errors (shed, closed, canceled) abort the walk.
func (c *Cluster) placeOnCandidates(ctx context.Context, id string, set plan.TaskSet,
	order []*node, allowDraining bool, origin durable.Origin, dag *durable.DAGMeta) (PlaceResult, error) {
	res := PlaceResult{Node: -1}
	for _, n := range order {
		if !allowDraining && n.draining.Load() {
			continue
		}
		res.Attempts++
		r, err := c.submit(ctx, n, &mutation{op: placeOp, set: set, id: id, origin: origin, dag: dag})
		if err != nil {
			return res, err
		}
		res.Verdict = r.verdict
		if r.verdict.Admit {
			res.Placed = true
			res.Node = n.id
			return res, nil
		}
	}
	return res, nil
}

// NodeCount returns the number of simulated nodes in the session.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// Evaluate answers the what-if admission verdict for set against every
// node's committed state, in node order, committing nothing. It runs
// through the same per-node mutation queues as placements, so each verdict
// is serialized against that node's committed state at its turn. Evaluate
// is read-only and therefore answered on any replica, leader or not — the
// shard router uses it to probe a migration destination before committing
// an admit-before-release move.
func (c *Cluster) Evaluate(ctx context.Context, set plan.TaskSet) ([]plan.Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]plan.Verdict, len(c.nodes))
	for i, n := range c.nodes {
		r, err := c.submit(ctx, n, &mutation{op: evalOp, set: set})
		if err != nil {
			return nil, err
		}
		out[i] = r.verdict
	}
	return out, nil
}

// PlacementInfo is the router-facing view of one live placement.
type PlacementInfo struct {
	// Node holds the set.
	Node int
	// Tasks is a copy of the placed set.
	Tasks plan.TaskSet
	// Utilization is the set's summed utilization.
	Utilization float64
	// DAG is true for DAG server reservations, whose provenance cannot
	// survive a plain re-place on another group.
	DAG bool
}

// Placement looks up a live, non-pending placement by id.
func (c *Cluster) Placement(id string) (PlacementInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.placements[id]
	if !ok || rec.pending {
		return PlacementInfo{}, false
	}
	return PlacementInfo{
		Node:        rec.node,
		Tasks:       append(plan.TaskSet(nil), rec.set...),
		Utilization: rec.util,
		DAG:         rec.dag != nil,
	}, true
}

// BestMovableUnder picks the largest non-pending, non-DAG placement
// anywhere in the session with utilization strictly inside (0, gap), or ""
// when none qualifies — the cluster-wide analogue of the per-node choice
// Rebalance makes, used by the router's cross-shard rebalance.
func (c *Cluster) BestMovableUnder(gap float64) (id string, info PlacementInfo, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bestUtil := 0.0
	var best *placementRec
	for pid, rec := range c.placements {
		if rec.pending || rec.dag != nil {
			continue
		}
		if rec.util < gap && rec.util > bestUtil {
			id, best, bestUtil = pid, rec, rec.util
		}
	}
	if best == nil {
		return "", PlacementInfo{}, false
	}
	return id, PlacementInfo{
		Node:        best.node,
		Tasks:       append(plan.TaskSet(nil), best.set...),
		Utilization: best.util,
	}, true
}

// candidates returns nodes in the configured policy's order.
func (c *Cluster) candidates() []*node {
	order := append([]*node(nil), c.nodes...)
	if c.cfg.Policy == WorstFit {
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].utilization() < order[j].utilization()
		})
	}
	return order
}

// Remove evicts the named set from its node and forgets the id. The
// verdict describes the node's remaining set.
func (c *Cluster) Remove(ctx context.Context, id string) (plan.Verdict, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.leaderCheck(); err != nil {
		return plan.Verdict{}, err
	}
	c.mu.Lock()
	rec, ok := c.placements[id]
	if !ok {
		c.mu.Unlock()
		return plan.Verdict{}, fmt.Errorf("%w: %q", ErrUnknownID, id)
	}
	if rec.pending {
		c.mu.Unlock()
		return plan.Verdict{}, fmt.Errorf("%w: %q", ErrPendingID, id)
	}
	rec.pending = true
	n := c.nodes[rec.node]
	c.mu.Unlock()

	r, err := c.submit(ctx, n, &mutation{op: removeOp, set: rec.set, id: id, origin: durable.OriginClient})
	c.mu.Lock()
	if err != nil {
		rec.pending = false
	} else {
		delete(c.placements, id)
	}
	c.mu.Unlock()
	if err != nil {
		return plan.Verdict{}, err
	}
	if !r.matched {
		// The engine never held this set: the record was stale. It is
		// dropped either way, but the divergence is surfaced, not
		// counted as a successful removal.
		c.unmatched.Add(1)
		return r.verdict, fmt.Errorf("%w: %q", ErrLostPlacement, id)
	}
	if c.repl == nil {
		c.removed.Add(1) // replicated mode counts on apply
	}
	return r.verdict, nil
}

// DrainReport summarizes one node drain.
type DrainReport struct {
	// Node is the drained node.
	Node int `json:"node"`
	// Moved counts sets re-placed onto other nodes.
	Moved int `json:"moved"`
	// Stranded counts sets no other node admitted; they stay on the
	// draining node.
	Stranded int `json:"stranded"`
	// StrandedIDs names them.
	StrandedIDs []string `json:"stranded_ids,omitempty"`
}

// Drain marks a node as draining (no new placements) and re-places every
// set it holds onto the remaining nodes in policy order. Sets no other
// node admits are put back and reported stranded; the node stays draining
// either way until Undrain.
func (c *Cluster) Drain(ctx context.Context, nodeID int) (DrainReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return DrainReport{Node: nodeID}, fmt.Errorf("%w: %d", ErrUnknownNode, nodeID)
	}
	if err := c.leaderCheck(); err != nil {
		return DrainReport{Node: nodeID}, err
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	n := c.nodes[nodeID]
	n.draining.Store(true)

	// Barrier: a Place that read draining=false before the store above
	// may still be walking candidates and could land its set here after
	// we snapshot. Every walk holds placeGate's read lock, so acquiring
	// the write lock waits those walks out — after it, any set that
	// slipped onto this node is committed and visible to idsOnNode, and
	// all later walks see the draining flag.
	c.placeGate.Lock()
	c.placeGate.Unlock() //nolint:staticcheck // empty section is the barrier

	rep := DrainReport{Node: nodeID}
	for _, id := range c.idsOnNode(nodeID) {
		moved, err := c.moveSet(ctx, id, c.candidates(), n, durable.OriginDrain)
		if err != nil {
			return rep, err
		}
		if moved {
			rep.Moved++
			if c.repl == nil {
				c.drained.Add(1) // replicated mode counts on apply
			}
		} else {
			rep.Stranded++
			rep.StrandedIDs = append(rep.StrandedIDs, id)
		}
	}
	return rep, nil
}

// Undrain re-opens a drained node for placements.
func (c *Cluster) Undrain(nodeID int) error {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, nodeID)
	}
	if err := c.leaderCheck(); err != nil {
		return err
	}
	c.nodes[nodeID].draining.Store(false)
	return nil
}

// rebalanceSlack is the utilization spread below which Rebalance stops:
// moves that chase less than this much imbalance churn without benefit.
const rebalanceSlack = 0.02

// Rebalance greedily narrows the utilization spread: repeatedly move one
// set from the most- to the least-utilized node while a move that shrinks
// the spread exists. Returns the number of sets moved.
func (c *Cluster) Rebalance(ctx context.Context) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.leaderCheck(); err != nil {
		return 0, err
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()

	moves := 0
	for iter := 0; iter < len(c.nodes)*4; iter++ {
		hi, lo := c.spreadEnds()
		if hi == nil || lo == nil || hi == lo {
			break
		}
		gap := hi.utilization() - lo.utilization()
		if gap <= rebalanceSlack {
			break
		}
		// The best movable set shrinks the spread the most: the largest
		// set smaller than the gap (moving anything larger would just
		// swap which node is overloaded).
		id := c.bestMovable(hi.id, gap)
		if id == "" {
			break
		}
		moved, err := c.moveSet(ctx, id, []*node{lo}, hi, durable.OriginRebalance)
		if err != nil {
			return moves, err
		}
		if !moved {
			break // the target rejected it (simulation, not arithmetic)
		}
		moves++
		if c.repl == nil {
			c.rebalanced.Add(1) // replicated mode counts on apply
		}
	}
	return moves, nil
}

// spreadEnds returns the most- and least-utilized non-draining nodes.
func (c *Cluster) spreadEnds() (hi, lo *node) {
	for _, n := range c.nodes {
		if n.draining.Load() {
			continue
		}
		if hi == nil || n.utilization() > hi.utilization() {
			hi = n
		}
		if lo == nil || n.utilization() < lo.utilization() {
			lo = n
		}
	}
	return hi, lo
}

// bestMovable picks the largest placement on the node with utilization
// strictly under gap (0 < util < gap), or "" when none qualifies.
func (c *Cluster) bestMovable(nodeID int, gap float64) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	best, bestUtil := "", 0.0
	for id, rec := range c.placements {
		if rec.node != nodeID || rec.pending {
			continue
		}
		if rec.util < gap && rec.util > bestUtil {
			best, bestUtil = id, rec.util
		}
	}
	return best
}

// idsOnNode snapshots the non-pending placement ids on a node.
func (c *Cluster) idsOnNode(nodeID int) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []string
	for id, rec := range c.placements {
		if rec.node == nodeID && !rec.pending {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// moveSet re-places id from `home` onto the first admitting node in
// `order`. The destination admits the set BEFORE home releases it — the
// per-node engines are independent, so the destination's verdict never
// needed home's capacity freed — which means a rejection or an error at
// any step leaves the set untouched on home: there is no put-back step
// that can fail and lose a placed set. Between the admit and the release
// the set is briefly reserved on both nodes; transient over-reservation
// is the only intermediate state, never loss.
func (c *Cluster) moveSet(ctx context.Context, id string, order []*node, home *node,
	origin durable.Origin) (bool, error) {
	c.mu.Lock()
	rec, ok := c.placements[id]
	if !ok || rec.pending || rec.node != home.id {
		c.mu.Unlock()
		return false, nil
	}
	rec.pending = true
	set := rec.set
	dagMeta := rec.dag
	c.mu.Unlock()

	// Never "move" onto the node being vacated: admitting a second copy
	// on home and then releasing one would churn the engine for nothing.
	dst := make([]*node, 0, len(order))
	for _, n := range order {
		if n != home {
			dst = append(dst, n)
		}
	}
	// A DAG reservation moves as a DAG record, so replay and replicas keep
	// its provenance no matter which node it lands on.
	res, err := c.placeOnCandidates(ctx, id, set, dst, false, origin, dagMeta)
	if err != nil || !res.Placed {
		c.mu.Lock()
		rec.pending = false
		c.mu.Unlock()
		return false, err
	}

	// Commit the new home before releasing the old copy, so at every
	// instant the record points at a node whose engine holds the set.
	c.mu.Lock()
	rec.node = res.Node
	rec.pending = false
	c.mu.Unlock()

	// Release home's copy. A client hangup must not abort a half-done
	// move, and a transient queue shed must not strand phantom demand on
	// home, so the release runs detached from ctx and retries through
	// sheds until the home worker applies it (or the session closes,
	// which tears down both engines anyway).
	relCtx := context.WithoutCancel(ctx)
	for {
		r, rerr := c.submit(relCtx, home, &mutation{op: removeOp, set: set, id: id, origin: durable.OriginRelease})
		if rerr == nil {
			if !r.matched {
				c.unmatched.Add(1)
			}
			return true, nil
		}
		var ae *core.AdmissionError
		if !errors.As(rerr, &ae) {
			// Closed session: the destination placement stands; report
			// the error so the admin operation stops cleanly.
			return true, rerr
		}
		sleep := time.Duration(ae.RetryAfterNs)
		if sleep <= 0 {
			sleep = c.cfg.FlushWindow
		}
		time.Sleep(sleep)
	}
}

// submit queues one mutation on a node and waits for the worker's answer,
// shedding with a structured retry-after error when the queue is full.
func (c *Cluster) submit(ctx context.Context, n *node, m *mutation) (mutResult, error) {
	m.ctx = ctx
	m.done = make(chan mutResult, 1)

	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		return mutResult{}, ErrClusterClosed
	}
	var shed bool
	select {
	case n.ch <- m:
	default:
		shed = true
	}
	c.closeMu.RUnlock()

	if shed {
		n.shed.Add(1)
		return mutResult{}, &core.AdmissionError{
			Reason: "cluster-overload",
			Detail: fmt.Sprintf("node %d mutation queue full (%d deep)", n.id, c.cfg.QueueDepth),
			RetryAfterNs: (time.Duration(shedRetryWindows+len(n.ch)/c.cfg.BatchSize) *
				c.cfg.FlushWindow).Nanoseconds(),
		}
	}
	// Once queued, the worker owns cancellation: it drops a mutation
	// whose context died while queued (answering canceled) and otherwise
	// applies it, answering exactly once either way. Abandoning this wait
	// on ctx.Done() instead would race the commit — the worker could
	// apply the mutation in the same instant, and a committed place
	// reported as canceled becomes phantom demand (or a committed remove
	// a lost set) that no caller can ever reconcile. The worker's answer
	// is authoritative, so we block for it; the wait is bounded by the
	// queue depth times the batch apply time.
	r := <-m.done
	if r.canceled {
		if err := ctx.Err(); err != nil {
			return mutResult{}, err
		}
		return mutResult{}, context.Canceled
	}
	if r.err != nil {
		return mutResult{}, r.err
	}
	return r, nil
}

// runNode is a node's worker loop: block for one mutation, then greedily
// drain whatever is already queued (up to BatchSize) and apply the batch
// in order — the same shape as the Server's runShard. The drain never
// waits on a flush window: a lone mutation commits immediately, and
// batches (and therefore shared WAL group commits) form exactly when
// mutations queue faster than the node applies them.
func (c *Cluster) runNode(n *node) {
	defer c.wg.Done()
	batch := make([]*mutation, 0, c.cfg.BatchSize)
	for {
		first, ok := <-n.ch
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		open := true
	fill:
		for len(batch) < c.cfg.BatchSize {
			select {
			case m, more := <-n.ch:
				if !more {
					open = false
					break fill
				}
				batch = append(batch, m)
			default:
				break fill
			}
		}
		n.batches.Add(1)
		c.applyBatch(n, batch)
		if !open {
			for m := range n.ch {
				c.applyBatch(n, []*mutation{m})
			}
			return
		}
	}
}

// applyBatch applies mutations to the node's engine. A mutation whose
// context was canceled while queued is dropped unapplied and counted.
//
// With durability on, replies for committed mutations are staged until
// the whole batch's WAL records are fsynced — a client never hears
// "placed" (or "removed") before the record that proves it is on disk.
// The group commit shares the fsync across this batch AND any other
// node's batch in flight. A WAL failure latches the store degraded and
// the committed replies still go out: the engine already applied them,
// so fail-open (keep serving, stop claiming durability) is the only
// answer that doesn't lie in one direction or the other.
func (c *Cluster) applyBatch(n *node, batch []*mutation) {
	if c.repl != nil {
		c.applyBatchRepl(n, batch)
		return
	}
	results := make([]mutResult, len(batch))
	replied := make([]bool, len(batch))
	var recs []durable.Record
	for i, m := range batch {
		if m.ctx != nil && m.ctx.Err() != nil {
			n.canceled.Add(1)
			c.canceled.Add(1)
			// Nothing was committed, so nothing needs to be durable:
			// cancellations answer immediately.
			m.done <- mutResult{canceled: true}
			replied[i] = true
			continue
		}
		var r mutResult
		switch m.op {
		case placeOp:
			r.verdict = n.eng.TryGang(m.set)
			r.matched = true
			if c.store != nil && r.verdict.Admit {
				rec := durable.Record{
					Kind: durable.KindPlace, Origin: m.origin,
					Node: n.id, ID: m.id, Tasks: m.set,
				}
				if m.dag != nil {
					rec.Kind = durable.KindPlaceDAG
					rec.DAG = m.dag
				}
				recs = append(recs, rec)
			}
		case removeOp:
			r.verdict, r.matched = n.eng.RemoveGang(m.set)
			if c.store != nil && r.matched {
				recs = append(recs, durable.Record{
					Kind: durable.KindRemove, Origin: m.origin,
					Node: n.id, ID: m.id,
				})
			}
		case evalOp:
			// What-if probe: no engine change, no WAL record.
			r.verdict = n.eng.EvaluateGang(m.set)
			r.matched = true
		}
		n.applied.Add(1)
		n.syncGauges()
		results[i] = r
	}
	if c.store != nil && len(recs) > 0 {
		c.store.LogBatch(recs) //nolint:errcheck // fail-open: store latches degraded, replies stand
	}
	for i, m := range batch {
		if !replied[i] {
			m.done <- results[i]
		}
	}
}

// NodeStatus is one node's row in the cluster status report.
type NodeStatus struct {
	Node        int     `json:"node"`
	Utilization float64 `json:"utilization"`
	Tasks       int64   `json:"tasks"`
	Sets        int64   `json:"sets"`
	Draining    bool    `json:"draining"`
	QueueDepth  int     `json:"queue_depth"`
}

// ClusterStatus is the session-wide status report.
type ClusterStatus struct {
	Nodes      []NodeStatus `json:"nodes"`
	Policy     string       `json:"policy"`
	Placements int          `json:"placements"`
	Placed     int64        `json:"placed_total"`
	Rejected   int64        `json:"rejected_total"`
	Removed    int64        `json:"removed_total"`
	Rebalanced int64        `json:"rebalanced_total"`
	Drained    int64        `json:"drained_total"`
	Canceled   int64        `json:"canceled_total"`
	// Unmatched counts removals whose set was not on its recorded node;
	// any nonzero value means placement state diverged from an engine.
	Unmatched int64 `json:"unmatched_removals_total"`
	// DAG reports DAG-submission activity; absent until the session sees
	// its first DAG (keeping DAG-free status byte-identical).
	DAG *DAGStatus `json:"dag,omitempty"`
	// Durability reports WAL/snapshot/recovery health; absent when
	// durability is off, keeping the disabled status byte-identical.
	Durability *DurabilityStatus `json:"durability,omitempty"`
	// Replication reports consensus health; absent when replication is
	// off, keeping single-replica status byte-identical.
	Replication *ReplicationStatus `json:"replication,omitempty"`
}

// DAGStatus is the DAG block of ClusterStatus.
type DAGStatus struct {
	// Placements counts live DAG reservations.
	Placements int `json:"placements"`
	// Submitted/Admitted/Rejected count this process's PlaceDAG calls
	// (admission-analysis outcomes); Placed counts committed DAG
	// reservations and is restored across recovery and replicated apply.
	Submitted int64 `json:"submitted_total"`
	Admitted  int64 `json:"admitted_total"`
	Rejected  int64 `json:"rejected_total"`
	Placed    int64 `json:"placed_total"`
}

// Status snapshots the cluster.
func (c *Cluster) Status() ClusterStatus {
	c.mu.Lock()
	perNode := make(map[int]int64)
	dagPlacements := 0
	for _, rec := range c.placements {
		if !rec.pending {
			perNode[rec.node]++
			if rec.dag != nil {
				dagPlacements++
			}
		}
	}
	placements := len(c.placements)
	c.mu.Unlock()

	st := ClusterStatus{
		Policy:     c.cfg.Policy.String(),
		Placements: placements,
		Placed:     c.placed.Load(),
		Rejected:   c.rejected.Load(),
		Removed:    c.removed.Load(),
		Rebalanced: c.rebalanced.Load(),
		Drained:    c.drained.Load(),
		Canceled:   c.canceled.Load(),
		Unmatched:   c.unmatched.Load(),
		Durability:  c.durabilityStatus(),
		Replication: c.replicationStatus(),
	}
	if d := (DAGStatus{
		Placements: dagPlacements,
		Submitted:  c.dagSubmitted.Load(),
		Admitted:   c.dagAdmitted.Load(),
		Rejected:   c.dagRejected.Load(),
		Placed:     c.dagPlaced.Load(),
	}); d != (DAGStatus{}) {
		st.DAG = &d
	}
	for _, n := range c.nodes {
		st.Nodes = append(st.Nodes, NodeStatus{
			Node:        n.id,
			Utilization: n.utilization(),
			Tasks:       n.tasks.Load(),
			Sets:        perNode[n.id],
			Draining:    n.draining.Load(),
			QueueDepth:  len(n.ch),
		})
	}
	return st
}

// RegisterMetrics exposes the cluster's counters and per-node gauges on a
// registry (typically the owning Server's, so one /metrics scrape covers
// both layers).
func (c *Cluster) RegisterMetrics(r *Registry) {
	perNode := func(val func(*node) float64) func() []Sample {
		return func() []Sample {
			out := make([]Sample, len(c.nodes))
			for i, n := range c.nodes {
				out[i] = Sample{Labels: []Label{{"node", fmt.Sprint(n.id)}}, Value: val(n)}
			}
			return out
		}
	}
	r.Gauge("hrtd_cluster_nodes", "Number of simulated placement nodes.",
		func() float64 { return float64(len(c.nodes)) })
	r.Counter("hrtd_cluster_placed_total", "Task sets successfully placed.",
		func() float64 { return float64(c.placed.Load()) })
	r.Counter("hrtd_cluster_rejected_total", "Task sets every node rejected.",
		func() float64 { return float64(c.rejected.Load()) })
	r.Counter("hrtd_cluster_removed_total", "Task sets evicted by clients.",
		func() float64 { return float64(c.removed.Load()) })
	r.Counter("hrtd_cluster_rebalanced_total", "Sets moved by rebalancing.",
		func() float64 { return float64(c.rebalanced.Load()) })
	r.Counter("hrtd_cluster_drained_total", "Sets moved off draining nodes.",
		func() float64 { return float64(c.drained.Load()) })
	r.Counter("hrtd_cluster_canceled_total", "Mutations dropped: context canceled while queued.",
		func() float64 { return float64(c.canceled.Load()) })
	r.Counter("hrtd_cluster_unmatched_removals_total",
		"Removals whose set was not on its recorded node (state divergence).",
		func() float64 { return float64(c.unmatched.Load()) })
	r.Counter("hrtd_dag_submitted_total", "DAG tasks submitted for admission.",
		func() float64 { return float64(c.dagSubmitted.Load()) })
	r.Counter("hrtd_dag_admitted_total", "DAG tasks whose response-time bound met the deadline.",
		func() float64 { return float64(c.dagAdmitted.Load()) })
	r.Counter("hrtd_dag_rejected_total",
		"DAG tasks rejected (structural, path-overrun, or deadline-miss).",
		func() float64 { return float64(c.dagRejected.Load()) })
	r.Counter("hrtd_dag_placed_total", "DAG server reservations committed to nodes.",
		func() float64 { return float64(c.dagPlaced.Load()) })
	r.Gauge("hrtd_dag_placements", "Live DAG reservations.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, rec := range c.placements {
				if !rec.pending && rec.dag != nil {
					n++
				}
			}
			return float64(n)
		})
	r.GaugeVec("hrtd_cluster_node_utilization", "Admitted utilization per node.",
		perNode(func(n *node) float64 { return n.utilization() }))
	r.GaugeVec("hrtd_cluster_node_tasks", "Admitted tasks per node.",
		perNode(func(n *node) float64 { return float64(n.tasks.Load()) }))
	r.GaugeVec("hrtd_cluster_node_draining", "1 when the node is draining.",
		perNode(func(n *node) float64 {
			if n.draining.Load() {
				return 1
			}
			return 0
		}))
	r.GaugeVec("hrtd_cluster_queue_depth", "Mutations queued per node.",
		perNode(func(n *node) float64 { return float64(len(n.ch)) }))
	r.CounterVec("hrtd_cluster_mutations_total", "Mutations applied per node.",
		perNode(func(n *node) float64 { return float64(n.applied.Load()) }))
	r.CounterVec("hrtd_cluster_shed_total", "Load-shed mutations per node.",
		perNode(func(n *node) float64 { return float64(n.shed.Load()) }))
	r.CounterVec("hrtd_cluster_incremental_ops_total",
		"Admission verdicts answered by the incremental engine per node.",
		perNode(func(n *node) float64 { return float64(n.incOps.Load()) }))
	r.CounterVec("hrtd_cluster_full_analyses_total",
		"Admission verdicts that fell back to the full analysis per node.",
		perNode(func(n *node) float64 { return float64(n.fullOps.Load()) }))
	if c.store != nil {
		c.registerDurabilityMetrics(r)
	}
	if c.repl != nil {
		c.registerReplicationMetrics(r)
	}
}
