package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"hrtsched/internal/plan"
	"hrtsched/internal/sim"
)

func TestClusterPlaceBatchOrderingAndErrors(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()

	if _, err := c.Place(ctx, "existing", setOfUtil(0.10)); err != nil {
		t.Fatalf("seed place: %v", err)
	}

	res := c.PlaceBatch(ctx, []BatchPlaceItem{
		{ID: "a", Tasks: setOfUtil(0.10)},
		{ID: "", Tasks: setOfUtil(0.10)},
		{ID: "existing", Tasks: setOfUtil(0.10)},
		{ID: "dup", Tasks: setOfUtil(0.10)},
		{ID: "dup", Tasks: setOfUtil(0.10)},
		{ID: "fat", Tasks: setOfUtil(0.95)},
	})
	if len(res) != 6 {
		t.Fatalf("got %d results for 6 items", len(res))
	}
	for i, want := range []string{"a", "", "existing", "dup", "dup", "fat"} {
		if res[i].ID != want {
			t.Fatalf("result %d id = %q, want %q (results must keep input order)", i, res[i].ID, want)
		}
	}
	if res[0].Err != nil || !res[0].Result.Placed {
		t.Fatalf("item a: %+v, %v", res[0].Result, res[0].Err)
	}
	if !errors.Is(res[1].Err, errEmptyID) {
		t.Fatalf("empty id: err = %v", res[1].Err)
	}
	if !errors.Is(res[2].Err, ErrDuplicateID) {
		t.Fatalf("existing id: err = %v", res[2].Err)
	}
	// In-batch duplicate: the first occurrence proceeds, the later one is
	// rejected deterministically regardless of worker scheduling.
	if res[3].Err != nil || !res[3].Result.Placed {
		t.Fatalf("first dup occurrence: %+v, %v", res[3].Result, res[3].Err)
	}
	if !errors.Is(res[4].Err, ErrDuplicateID) {
		t.Fatalf("second dup occurrence: err = %v", res[4].Err)
	}
	// An infeasible set is a rejection, not an error.
	if res[5].Err != nil || res[5].Result.Placed {
		t.Fatalf("fat set: %+v, %v", res[5].Result, res[5].Err)
	}

	if st := c.Status(); st.Placed != 3 { // existing, a, dup
		t.Fatalf("placed = %d, want 3", st.Placed)
	}
}

// TestClusterPlaceBatchParallelVerdictsMatchOracle drives the parallel
// batch path through random mixed workloads — periodic gangs, DAG
// server-task reservations, removes, in-batch conflicts — and after every
// batch audits each node's committed verdict against the full uncached
// analysis of that node's task set. Under -tags planverify every TryGang
// and RemoveGang inside the batch additionally self-verifies, so this is
// the parallel-path half of the bit-identity property suite.
func TestClusterPlaceBatchParallelVerdictsMatchOracle(t *testing.T) {
	rng := sim.NewRand(0x6a31d)
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Policy: WorstFit})
	ctx := context.Background()
	placed := map[string]bool{}
	next := 0

	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		// Every few rounds a DAG reservation joins the mix: its derived
		// server task must be audited exactly like a client gang.
		if round%5 == 4 {
			id := fmt.Sprintf("dag-%d", round)
			if res, err := c.PlaceDAG(ctx, id, testDAG(), ""); err != nil {
				t.Fatalf("round %d: PlaceDAG: %v", round, err)
			} else if res.Placed {
				placed[id] = true
			}
		}

		n := 1 + int(rng.Uint64()%8)
		items := make([]BatchPlaceItem, n)
		for i := range items {
			util := 0.02 + float64(rng.Uint64()%11)/100 // 0.02 .. 0.12
			id := fmt.Sprintf("g%d", next)
			next++
			switch rng.Uint64() % 10 {
			case 0: // in-batch duplicate of the previous item
				if i > 0 {
					id = items[i-1].ID
				}
			case 1: // collide with an already-placed id
				for p := range placed {
					id = p
					break
				}
			}
			items[i] = BatchPlaceItem{ID: id, Tasks: setOfUtil(util)}
		}
		res := c.PlaceBatch(ctx, items)
		if len(res) != n {
			t.Fatalf("round %d: %d results for %d items", round, len(res), n)
		}
		for i, r := range res {
			if r.ID != items[i].ID {
				t.Fatalf("round %d: result %d id %q != item id %q", round, i, r.ID, items[i].ID)
			}
			switch {
			case errors.Is(r.Err, ErrDuplicateID):
				// expected for collisions
			case r.Err != nil:
				t.Fatalf("round %d: item %d (%s): %v", round, i, r.ID, r.Err)
			case r.Result.Placed:
				placed[r.ID] = true
			}
		}

		// Random removes keep the engines exercising the RemoveGang path.
		for id := range placed {
			if rng.Uint64()%4 == 0 {
				if _, err := c.Remove(ctx, id); err != nil {
					t.Fatalf("round %d: Remove(%s): %v", round, id, err)
				}
				delete(placed, id)
			}
		}

		// Per-node audit: the incremental verdict each worker committed
		// must be equivalent to the full uncached analysis of the node's
		// task set — the parallel path may not drift from the oracle.
		for _, nd := range c.nodes {
			got := nd.eng.Verdict()
			want := plan.Analyze(c.cfg.Spec, nd.eng.Tasks())
			if !plan.VerdictsEquivalent(got, want) {
				t.Fatalf("round %d: node %d diverges from oracle:\ninc  %+v\nfull %+v",
					round, nd.id, got, want)
			}
		}
	}
	if len(placed) == 0 {
		t.Fatal("workload never left anything placed; property vacuous")
	}
}

// BenchmarkClusterPlaceBatch measures the batched placement path: one op
// is one place+remove pair flowing through PlaceBatch in 64-item batches,
// matching BenchmarkClusterPlaceMemory's per-op accounting.
func BenchmarkClusterPlaceBatch(b *testing.B) {
	c, err := NewCluster(ClusterConfig{Spec: testSpec, Nodes: 4})
	if err != nil {
		b.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()
	ctx := context.Background()
	set := plan.TaskSet{{PeriodNs: 1_000_000, SliceNs: 2_000}}
	const batch = 64
	items := make([]BatchPlaceItem, batch)
	b.ResetTimer()
	for n := 0; n < b.N; n += batch {
		k := batch
		if rem := b.N - n; rem < k {
			k = rem
		}
		for j := 0; j < k; j++ {
			items[j] = BatchPlaceItem{ID: fmt.Sprintf("b%d-%d", n, j), Tasks: set}
		}
		for _, r := range c.PlaceBatch(ctx, items[:k]) {
			if r.Err != nil || !r.Result.Placed {
				b.Fatalf("PlaceBatch(%s): %+v, %v", r.ID, r.Result, r.Err)
			}
		}
		for j := 0; j < k; j++ {
			if _, err := c.Remove(ctx, items[j].ID); err != nil {
				b.Fatalf("Remove(%s): %v", items[j].ID, err)
			}
		}
	}
}
