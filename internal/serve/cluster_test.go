package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hrtsched/internal/core"
	"hrtsched/internal/plan"
)

func newTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.Spec == (plan.Spec{}) {
		cfg.Spec = testSpec
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// setOfUtil builds a harmonic task set whose raw utilization is roughly
// frac (e.g. 0.3 -> one 100us-period task with a 30us slice).
func setOfUtil(frac float64) plan.TaskSet {
	return plan.TaskSet{{PeriodNs: 100_000, SliceNs: int64(frac * 100_000)}}
}

func TestClusterConfigValidate(t *testing.T) {
	bad := []ClusterConfig{
		{Spec: testSpec, Nodes: -1},
		{Spec: plan.Spec{UtilizationLimit: 0}},
		{Spec: plan.Spec{UtilizationLimit: 1.5}},
		{Spec: testSpec, Policy: Policy(9)},
		{Spec: testSpec, QueueDepth: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: bad config validated: %+v", i, cfg)
		}
	}
	if _, err := ParsePolicy("best-fit"); err == nil {
		t.Errorf("unknown policy parsed")
	}
	for _, s := range []string{"first-fit", "worst-fit"} {
		p, err := ParsePolicy(s)
		if err != nil || p.String() != s {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
}

func TestClusterFirstFitPacksLowNodes(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3})
	ctx := context.Background()

	// Three 30%-utilization sets all fit on node 0 under the 0.79 limit
	// only twice (overhead inflation pushes a third past the bound), so
	// first-fit should fill node 0 before touching node 1.
	var nodes []int
	for _, id := range []string{"a", "b", "c", "d"} {
		res, err := c.Place(ctx, id, setOfUtil(0.30))
		if err != nil || !res.Placed {
			t.Fatalf("Place(%s): placed=%v err=%v verdict=%+v", id, res.Placed, err, res.Verdict)
		}
		nodes = append(nodes, res.Node)
	}
	if nodes[0] != 0 || nodes[1] != 0 {
		t.Fatalf("first-fit scattered early sets: %v", nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] < nodes[i-1] {
			t.Fatalf("first-fit went backwards: %v", nodes)
		}
	}
	st := c.Status()
	if st.Placed != 4 || st.Placements != 4 {
		t.Fatalf("status after placements: %+v", st)
	}
}

func TestClusterWorstFitSpreads(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Policy: WorstFit})
	ctx := context.Background()
	seen := map[int]bool{}
	for _, id := range []string{"a", "b", "c"} {
		res, err := c.Place(ctx, id, setOfUtil(0.20))
		if err != nil || !res.Placed {
			t.Fatalf("Place(%s): %+v, %v", id, res, err)
		}
		seen[res.Node] = true
	}
	if len(seen) != 3 {
		t.Fatalf("worst-fit did not spread across all nodes: %v", seen)
	}
}

func TestClusterPlaceRejectsAndErrors(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()

	// A set over the utilization bound is rejected by every node: no
	// error, Placed=false, rejected counter bumps.
	res, err := c.Place(ctx, "fat", setOfUtil(0.95))
	if err != nil || res.Placed || res.Node != -1 || res.Attempts != 2 {
		t.Fatalf("over-bound set: %+v, %v", res, err)
	}
	if got := c.Status().Rejected; got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	// The id is free again after a rejection.
	if res, err = c.Place(ctx, "fat", setOfUtil(0.10)); err != nil || !res.Placed {
		t.Fatalf("reusing id after rejection: %+v, %v", res, err)
	}
	if _, err = c.Place(ctx, "fat", setOfUtil(0.10)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate id error = %v", err)
	}
	if _, err = c.Place(ctx, "", setOfUtil(0.10)); err == nil {
		t.Fatalf("empty id accepted")
	}
	if _, err = c.Remove(ctx, "nope"); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown id remove error = %v", err)
	}
}

func TestClusterRemoveFreesCapacity(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 1})
	ctx := context.Background()
	if res, err := c.Place(ctx, "a", setOfUtil(0.60)); err != nil || !res.Placed {
		t.Fatalf("Place(a): %+v, %v", res, err)
	}
	if res, err := c.Place(ctx, "b", setOfUtil(0.60)); err != nil || res.Placed {
		t.Fatalf("second 60%% set should not fit: %+v, %v", res, err)
	}
	if _, err := c.Remove(ctx, "a"); err != nil {
		t.Fatalf("Remove(a): %v", err)
	}
	if res, err := c.Place(ctx, "b", setOfUtil(0.60)); err != nil || !res.Placed {
		t.Fatalf("Place(b) after eviction: %+v, %v", res, err)
	}
	st := c.Status()
	if st.Removed != 1 || st.Placements != 1 {
		t.Fatalf("status after remove/replace: %+v", st)
	}
}

func TestClusterDrainMovesSets(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if res, err := c.Place(ctx, id, setOfUtil(0.15)); err != nil || res.Node != 0 {
			t.Fatalf("Place(%s): %+v, %v", id, res, err)
		}
	}
	rep, err := c.Drain(ctx, 0)
	if err != nil || rep.Moved != 2 || rep.Stranded != 0 {
		t.Fatalf("Drain: %+v, %v", rep, err)
	}
	st := c.Status()
	if !st.Nodes[0].Draining || st.Nodes[0].Tasks != 0 || st.Nodes[1].Tasks != 2 {
		t.Fatalf("post-drain status: %+v", st)
	}
	// Draining node takes no new placements; undrain re-opens it.
	if res, err := c.Place(ctx, "c", setOfUtil(0.15)); err != nil || res.Node != 1 {
		t.Fatalf("placement during drain went to node %d (%v)", res.Node, err)
	}
	if err := c.Undrain(0); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if res, err := c.Place(ctx, "d", setOfUtil(0.15)); err != nil || res.Node != 0 {
		t.Fatalf("placement after undrain went to node %d (%v)", res.Node, err)
	}
	if _, err := c.Drain(ctx, 9); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node drain error = %v", err)
	}
}

func TestClusterDrainStrandsUnplaceable(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()
	// Fill node 1 so node 0's big set has nowhere to go.
	if res, err := c.Place(ctx, "big0", setOfUtil(0.60)); err != nil || res.Node != 0 {
		t.Fatalf("Place(big0): %+v, %v", res, err)
	}
	if res, err := c.Place(ctx, "big1", setOfUtil(0.60)); err != nil || res.Node != 1 {
		t.Fatalf("Place(big1): %+v, %v", res, err)
	}
	rep, err := c.Drain(ctx, 0)
	if err != nil || rep.Moved != 0 || rep.Stranded != 1 || len(rep.StrandedIDs) != 1 {
		t.Fatalf("Drain: %+v, %v", rep, err)
	}
	// The stranded set is still committed on the draining node.
	st := c.Status()
	if st.Nodes[0].Tasks != 1 || st.Placements != 2 {
		t.Fatalf("stranded set lost: %+v", st)
	}
}

func TestClusterRebalanceNarrowsSpread(t *testing.T) {
	// First-fit piles everything on node 0; rebalance should spread it.
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()
	for _, id := range []string{"a", "b", "c"} {
		if res, err := c.Place(ctx, id, setOfUtil(0.15)); err != nil || res.Node != 0 {
			t.Fatalf("Place(%s): %+v, %v", id, res, err)
		}
	}
	moved, err := c.Rebalance(ctx)
	if err != nil || moved == 0 {
		t.Fatalf("Rebalance: moved=%d err=%v", moved, err)
	}
	st := c.Status()
	gap := st.Nodes[0].Utilization - st.Nodes[1].Utilization
	if gap < 0 {
		gap = -gap
	}
	if gap > 0.25 {
		t.Fatalf("rebalance left a %.2f utilization gap: %+v", gap, st)
	}
	if st.Rebalanced != int64(moved) {
		t.Fatalf("rebalanced counter %d != moved %d", st.Rebalanced, moved)
	}
	// A balanced cluster needs no further moves.
	if again, err := c.Rebalance(ctx); err != nil || again != 0 {
		t.Fatalf("second rebalance moved %d (%v)", again, err)
	}
}

func TestClusterShedsWhenQueueFull(t *testing.T) {
	// No workers: the queue (depth 1) fills after one mutation.
	c, err := newCluster(ClusterConfig{Spec: testSpec, Nodes: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("newCluster: %v", err)
	}
	n := c.nodes[0]
	n.ch <- &mutation{}
	_, err = c.submit(context.Background(), n, &mutation{op: placeOp, set: setOfUtil(0.1)})
	var adm *core.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("full queue error = %v, want AdmissionError", err)
	}
	if adm.Reason != "cluster-overload" || adm.RetryAfterNs <= 0 {
		t.Fatalf("shed error = %+v", adm)
	}
	if n.shed.Load() != 1 {
		t.Fatalf("shed counter = %d", n.shed.Load())
	}
}

func TestClusterCanceledContextDropsQueuedMutation(t *testing.T) {
	// No workers: cancel while queued, then apply the batch by hand.
	c, err := newCluster(ClusterConfig{Spec: testSpec, Nodes: 1})
	if err != nil {
		t.Fatalf("newCluster: %v", err)
	}
	n := c.nodes[0]
	ctx, cancel := context.WithCancel(context.Background())
	m := &mutation{ctx: ctx, op: placeOp, set: setOfUtil(0.1), done: make(chan mutResult, 1)}
	cancel()
	c.applyBatch(n, []*mutation{m})
	if r := <-m.done; !r.canceled {
		t.Fatalf("canceled mutation was applied: %+v", r)
	}
	if n.eng.Len() != 0 {
		t.Fatalf("canceled mutation mutated the engine")
	}
	if c.canceled.Load() != 1 || n.canceled.Load() != 1 {
		t.Fatalf("canceled counters = %d/%d", c.canceled.Load(), n.canceled.Load())
	}
	// End to end: Place with an already-canceled context reports ctx.Err.
	c2 := newTestCluster(t, ClusterConfig{Nodes: 1})
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c2.Place(done, "x", setOfUtil(0.1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Place error = %v", err)
	}
	if _, err := c2.Place(context.Background(), "x", setOfUtil(0.1)); err != nil {
		t.Fatalf("id not released after canceled place: %v", err)
	}
}

func TestClusterClosedRejects(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 1})
	c.Close()
	c.Close() // idempotent
	if _, err := c.Place(context.Background(), "a", setOfUtil(0.1)); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("closed cluster error = %v", err)
	}
}

func TestClusterMetricsRender(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	reg := NewRegistry()
	c.RegisterMetrics(reg)
	ctx := context.Background()
	if res, err := c.Place(ctx, "a", setOfUtil(0.30)); err != nil || !res.Placed {
		t.Fatalf("Place: %+v, %v", res, err)
	}
	// Metrics sample worker-side atomics; give the applied batch a beat.
	deadline := time.Now().Add(2 * time.Second)
	var text string
	for {
		text = reg.Render()
		if strings.Contains(text, "hrtd_cluster_placed_total 1") || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, want := range []string{
		"hrtd_cluster_nodes 2",
		"hrtd_cluster_placed_total 1",
		`hrtd_cluster_node_utilization{node="0"}`,
		`hrtd_cluster_node_tasks{node="0"} 1`,
		`hrtd_cluster_incremental_ops_total{node="0"}`,
		`hrtd_cluster_full_analyses_total{node="0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestClusterDrainWithCanceledContextLosesNothing(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 2})
	ctx := context.Background()
	for _, id := range []string{"a", "b"} {
		if res, err := c.Place(ctx, id, setOfUtil(0.15)); err != nil || res.Node != 0 {
			t.Fatalf("Place(%s): %+v, %v", id, res, err)
		}
	}
	dead, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Drain(dead, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled drain error = %v", err)
	}
	// The aborted drain moved nothing and lost nothing: destinations are
	// admitted before home releases, so a cancellation mid-move leaves
	// both sets recorded and committed on node 0.
	st := c.Status()
	if st.Placements != 2 || st.Nodes[0].Tasks != 2 || st.Nodes[1].Tasks != 0 {
		t.Fatalf("canceled drain corrupted state: %+v", st)
	}
	if err := c.Undrain(0); err != nil {
		t.Fatalf("Undrain: %v", err)
	}
	if rep, err := c.Drain(ctx, 0); err != nil || rep.Moved != 2 {
		t.Fatalf("drain after canceled attempt: %+v, %v", rep, err)
	}
}

func TestClusterRemoveSurfacesDivergence(t *testing.T) {
	c := newTestCluster(t, ClusterConfig{Nodes: 1})
	ctx := context.Background()
	if res, err := c.Place(ctx, "a", setOfUtil(0.30)); err != nil || !res.Placed {
		t.Fatalf("Place: %+v, %v", res, err)
	}
	// Corrupt the record so it names tasks the engine never admitted,
	// simulating map/engine divergence.
	c.mu.Lock()
	c.placements["a"].set = setOfUtil(0.23)
	c.mu.Unlock()
	if _, err := c.Remove(ctx, "a"); !errors.Is(err, ErrLostPlacement) {
		t.Fatalf("divergent remove error = %v", err)
	}
	st := c.Status()
	if st.Removed != 0 || st.Unmatched != 1 || st.Placements != 0 {
		t.Fatalf("divergence accounting wrong: %+v", st)
	}
	// An unmatched removal must leave the engine's real demand untouched.
	if st.Nodes[0].Tasks != 1 {
		t.Fatalf("unmatched removal mutated the engine: %+v", st)
	}
}

func TestClusterDrainSeesRacingPlacements(t *testing.T) {
	// Places racing the drain flag must end up either moved off the node
	// or listed stranded — never silently parked on the draining node —
	// and every record must stay backed by its node's engine.
	for iter := 0; iter < 25; iter++ {
		c := newTestCluster(t, ClusterConfig{Nodes: 2})
		ctx := context.Background()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c.Place(ctx, fmt.Sprintf("s%d", i), setOfUtil(0.05)) //nolint:errcheck
			}(i)
		}
		rep, err := c.Drain(ctx, 0)
		if err != nil {
			t.Fatalf("iter %d: Drain: %v", iter, err)
		}
		wg.Wait()
		stranded := map[string]bool{}
		for _, id := range rep.StrandedIDs {
			stranded[id] = true
		}
		c.mu.Lock()
		var unseen []string
		recorded := 0
		for id, rec := range c.placements {
			recorded += len(rec.set)
			if rec.node == 0 && !stranded[id] {
				unseen = append(unseen, id)
			}
		}
		c.mu.Unlock()
		if len(unseen) != 0 {
			t.Fatalf("iter %d: sets landed on draining node unseen: %v (report %+v)",
				iter, unseen, rep)
		}
		committed := 0
		for _, n := range c.nodes {
			committed += n.eng.Len()
		}
		if committed != recorded {
			t.Fatalf("iter %d: engines hold %d tasks, records say %d", iter, committed, recorded)
		}
		c.Close()
	}
}

func TestClusterEnginesStayConsistent(t *testing.T) {
	// Cross-check every node's committed verdict against the full
	// analysis after a busy mixed workload.
	c := newTestCluster(t, ClusterConfig{Nodes: 3, Policy: WorstFit})
	ctx := context.Background()
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for i, id := range ids {
		if _, err := c.Place(ctx, id, setOfUtil(0.1+float64(i%3)*0.1)); err != nil {
			t.Fatalf("Place(%s): %v", id, err)
		}
	}
	for _, id := range []string{"b", "e"} {
		if _, err := c.Remove(ctx, id); err != nil {
			t.Fatalf("Remove(%s): %v", id, err)
		}
	}
	if _, err := c.Rebalance(ctx); err != nil {
		t.Fatalf("Rebalance: %v", err)
	}
	for _, n := range c.nodes {
		got := n.eng.Verdict()
		want := plan.Analyze(c.cfg.Spec, n.eng.Tasks())
		if !plan.VerdictsEquivalent(got, want) {
			t.Fatalf("node %d engine diverges:\ninc  %+v\nfull %+v", n.id, got, want)
		}
	}
}
