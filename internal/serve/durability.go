package serve

import (
	"fmt"

	"hrtsched/internal/durable"
	"hrtsched/internal/plan"
	"hrtsched/internal/wal"
)

// DurabilityConfig opts a Cluster into durable state: every committed
// mutation is group-committed to a write-ahead log under Dir before the
// client hears the answer, snapshots bound replay time, and NewCluster
// recovers the previous session's placements from disk.
type DurabilityConfig struct {
	// Dir holds the WAL segments and snapshots.
	Dir string
	// FS overrides the filesystem (fault-injection tests); nil = real.
	FS wal.FS
	// SegmentBytes overrides the WAL segment roll threshold.
	SegmentBytes int64
	// SnapshotEveryRecords and SnapshotEveryBytes override the snapshot
	// cadence.
	SnapshotEveryRecords int64
	SnapshotEveryBytes   int64
}

// DurabilityStatus is the durability block of ClusterStatus — absent
// entirely when durability is off, so the disabled status stays
// byte-identical to previous releases.
type DurabilityStatus struct {
	WALSegments     int                    `json:"wal_segments"`
	WALBytes        int64                  `json:"wal_bytes"`
	LastLSN         uint64                 `json:"last_lsn"`
	SyncedLSN       uint64                 `json:"synced_lsn"`
	Records         int64                  `json:"wal_records_total"`
	Fsyncs          int64                  `json:"wal_fsyncs_total"`
	Batches         int64                  `json:"wal_batches_total"`
	AppendErrors    int64                  `json:"wal_append_errors_total"`
	LastSnapshotLSN uint64                 `json:"last_snapshot_lsn"`
	Snapshots       int64                  `json:"snapshots_total"`
	SnapshotErrors  int64                  `json:"snapshot_errors_total"`
	PendingRecords  int64                  `json:"records_since_snapshot"`
	Degraded        bool                   `json:"degraded"`
	LastRecovery    durable.RecoveryResult `json:"last_recovery"`
}

// openDurability opens the store and rebuilds the previous session:
// engines restore the snapshot prefix, the WAL suffix replays through
// them in commit order, move-orphans are reconciled, and the placement
// map, counters, and gauges are installed. Runs before the node workers
// start, so no locking is needed.
func (c *Cluster) openDurability() error {
	d := c.cfg.Durability
	store, err := durable.Open(durable.Config{
		Dir:                  d.Dir,
		NumNodes:             c.cfg.Nodes,
		Spec:                 c.cfg.Spec,
		FS:                   d.FS,
		SegmentBytes:         d.SegmentBytes,
		SnapshotEveryRecords: d.SnapshotEveryRecords,
		SnapshotEveryBytes:   d.SnapshotEveryBytes,
	})
	if err != nil {
		return err
	}
	st := store.RecoveredState()
	for i, n := range c.nodes {
		var tasks plan.TaskSet
		for _, e := range st.Nodes[i] {
			tasks = append(tasks, e.Tasks...)
		}
		if len(tasks) > 0 {
			n.eng.Restore(tasks)
		}
	}
	err = store.Replay(func(r durable.Record, tasks plan.TaskSet) bool {
		n := c.nodes[r.Node]
		switch r.Kind {
		case durable.KindPlace, durable.KindPlaceDAG:
			// A DAG record replays its stored derived server task; the
			// response-time analysis is never re-run at recovery.
			return n.eng.TryGang(tasks).Admit
		case durable.KindRemove:
			_, matched := n.eng.RemoveGang(tasks)
			return matched
		}
		return false
	})
	if err != nil {
		store.Close() //nolint:errcheck // already failing; surface the replay error
		return fmt.Errorf("serve: wal replay: %w", err)
	}
	// Reconcile the one intermediate state a crash can legally expose: a
	// move whose destination place was logged but whose home release was
	// not leaves a stale home copy — release it from the engine and log
	// the release so log, shadow, and engines agree again.
	c.store = store // ReleaseOrphans logs through the store
	if _, err := store.ReleaseOrphans(func(o durable.Orphan) {
		c.nodes[o.Node].eng.RemoveGang(o.Tasks)
	}); err != nil {
		store.Close() //nolint:errcheck
		c.store = nil
		return fmt.Errorf("serve: orphan reconciliation: %w", err)
	}
	if plan.VerifyEnabled {
		// Recovery audit: each recovered engine's retained verdict must be
		// equivalent to a from-scratch analysis of its recovered set.
		for _, n := range c.nodes {
			fresh := plan.Analyze(c.cfg.Spec, n.eng.Tasks())
			if !plan.VerdictsEquivalent(n.eng.Verdict(), fresh) {
				store.Close() //nolint:errcheck
				c.store = nil
				return fmt.Errorf("serve: recovery audit: node %d verdict diverges from fresh analysis", n.id)
			}
		}
	}

	for id, nodeID := range st.Placements {
		for _, e := range st.Nodes[nodeID] {
			if e.ID == id {
				c.placements[id] = &placementRec{
					node: nodeID,
					set:  e.Tasks,
					util: e.Tasks.Utilization(),
					dag:  e.DAG,
				}
				break
			}
		}
	}
	c.placed.Store(st.Counters.Placed)
	c.removed.Store(st.Counters.Removed)
	c.drained.Store(st.Counters.Drained)
	c.rebalanced.Store(st.Counters.Rebalanced)
	c.dagPlaced.Store(st.Counters.DAGPlaced)
	for _, n := range c.nodes {
		n.syncGauges()
	}
	c.recovery = store.Recovery()
	return nil
}

// durabilityStatus builds the status block, nil when durability is off.
func (c *Cluster) durabilityStatus() *DurabilityStatus {
	if c.rstore != nil {
		return c.replDurabilityStatus()
	}
	if c.store == nil {
		return nil
	}
	st := c.store.Stats()
	return &DurabilityStatus{
		WALSegments:     st.WAL.Segments,
		WALBytes:        st.WAL.Bytes,
		LastLSN:         st.WAL.LastLSN,
		SyncedLSN:       st.WAL.SyncedLSN,
		Records:         st.WAL.Appends,
		Fsyncs:          st.WAL.Fsyncs,
		Batches:         st.WAL.Batches,
		AppendErrors:    st.WAL.AppendErrors,
		LastSnapshotLSN: st.LastSnapshotLSN,
		Snapshots:       st.Snapshots,
		SnapshotErrors:  st.SnapshotErrors,
		PendingRecords:  st.PendingRecords,
		Degraded:        st.Degraded,
		LastRecovery:    c.recovery,
	}
}

// Recovery returns what recovery found at boot; the zero value when
// durability is off.
func (c *Cluster) Recovery() durable.RecoveryResult { return c.recovery }

// registerDurabilityMetrics exposes hrtd_wal_* and hrtd_recovery_* on r.
func (c *Cluster) registerDurabilityMetrics(r *Registry) {
	stats := func(f func(durable.Stats) float64) func() float64 {
		return func() float64 { return f(c.store.Stats()) }
	}
	r.Gauge("hrtd_wal_segments", "Write-ahead log segment files on disk.",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.Segments) }))
	r.Gauge("hrtd_wal_bytes", "Write-ahead log bytes on disk.",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.Bytes) }))
	r.Gauge("hrtd_wal_synced_lsn", "Last LSN known durable.",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.SyncedLSN) }))
	r.Counter("hrtd_wal_records_total", "Mutation records appended to the WAL.",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.Appends) }))
	r.Counter("hrtd_wal_fsyncs_total", "WAL fsyncs (group commits share one).",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.Fsyncs) }))
	r.Counter("hrtd_wal_batches_total", "WAL group-commit batches.",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.Batches) }))
	r.Counter("hrtd_wal_append_errors_total", "WAL append failures (store degraded).",
		stats(func(s durable.Stats) float64 { return float64(s.WAL.AppendErrors) }))
	r.Counter("hrtd_wal_snapshots_total", "Snapshots written.",
		stats(func(s durable.Stats) float64 { return float64(s.Snapshots) }))
	r.Counter("hrtd_wal_snapshot_errors_total", "Snapshot write/prune/compact failures.",
		stats(func(s durable.Stats) float64 { return float64(s.SnapshotErrors) }))
	r.Gauge("hrtd_wal_last_snapshot_lsn", "LSN covered by the newest snapshot.",
		stats(func(s durable.Stats) float64 { return float64(s.LastSnapshotLSN) }))
	r.Gauge("hrtd_wal_degraded", "1 when the store latched fail-open after a write error.",
		stats(func(s durable.Stats) float64 {
			if s.Degraded {
				return 1
			}
			return 0
		}))
	r.Histogram("hrtd_wal_fsync_latency_us", "WAL fsync latency in microseconds.",
		func() []HistSample {
			return []HistSample{{H: c.store.Stats().WAL.FsyncLatencyUs}}
		})
	rec := c.recovery
	r.Counter("hrtd_recovery_replayed_total", "WAL records replayed at boot.",
		func() float64 { return float64(rec.Replayed) })
	r.Counter("hrtd_recovery_rejected_total", "WAL records skipped at boot (stale or refused).",
		func() float64 { return float64(rec.Rejected) })
	r.Counter("hrtd_recovery_truncated_bytes", "Torn-tail bytes amputated at boot.",
		func() float64 { return float64(rec.TruncatedBytes) })
	r.Counter("hrtd_recovery_dropped_segments", "Unreachable WAL segments dropped at boot.",
		func() float64 { return float64(rec.DroppedSegments) })
	r.Counter("hrtd_recovery_orphans_released", "Mid-move stale copies reconciled at boot.",
		func() float64 { return float64(rec.OrphansReleased) })
	r.Counter("hrtd_recovery_bad_snapshots", "Snapshot files skipped at boot (CRC/decode).",
		func() float64 { return float64(rec.BadSnapshots) })
	r.Gauge("hrtd_recovery_snapshot_lsn", "LSN of the snapshot recovery started from.",
		func() float64 { return float64(rec.SnapshotLSN) })
}
