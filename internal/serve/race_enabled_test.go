//go:build race

package serve

// The race detector multiplies wall-clock cost several-fold, which makes
// throughput gates measure the instrumentation instead of the code; see
// TestDurablePlaceThroughputAtLeast8k.
func init() { raceEnabled = true }
