package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"hrtsched/internal/stats"
)

// Registry is a pull-based metrics registry rendering the Prometheus text
// exposition format. Metrics are registered once with a collect callback
// and sampled at scrape time, so exposing a counter costs nothing on the
// hot path — the callback reads whatever atomic or kernel counter backs it.
// Both hrtd's /metrics endpoint and cmd/chaos's -metrics dump render
// through this one code path.
//
// Registering the same family name twice merges the collectors under one
// HELP/TYPE block (the kinds must agree), which is how K shard-group
// clusters expose one hrtd_cluster_* family with per-group labels: each
// group registers through its own Labeled view of the shared registry.
type Registry struct {
	// root is nil on the root registry itself; a Labeled view points back
	// at the root, where the metric families actually live.
	root    *Registry
	labels  []Label
	metrics []*metric
	byName  map[string]*metric
}

// Label is one name="value" pair on a sample.
type Label struct {
	Key, Value string
}

// Sample is one observed value of a metric, with optional labels.
type Sample struct {
	Labels []Label
	Value  float64
}

// HistSample is one labelled histogram snapshot.
type HistSample struct {
	Labels []Label
	H      *stats.Histogram
}

type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	name, help  string
	kind        metricKind
	collect     []func() []Sample
	collectHist []func() []HistSample
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Labeled returns a view of the registry that prepends the given labels to
// every sample registered through it. Families registered by several views
// under the same name share one HELP/TYPE block; the per-view labels keep
// the series distinct. The view shares the root's storage — rendering any
// view renders the whole registry.
func (r *Registry) Labeled(labels ...Label) *Registry {
	root := r.rootReg()
	merged := append(append([]Label(nil), r.labels...), labels...)
	return &Registry{root: root, labels: merged}
}

func (r *Registry) rootReg() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

func (r *Registry) add(name, help string, kind metricKind, fn func() []Sample, hfn func() []HistSample) {
	if labels := r.labels; len(labels) > 0 {
		if fn != nil {
			inner := fn
			fn = func() []Sample {
				out := inner()
				for i := range out {
					out[i].Labels = append(append([]Label(nil), labels...), out[i].Labels...)
				}
				return out
			}
		}
		if hfn != nil {
			inner := hfn
			hfn = func() []HistSample {
				out := inner()
				for i := range out {
					out[i].Labels = append(append([]Label(nil), labels...), out[i].Labels...)
				}
				return out
			}
		}
	}
	root := r.rootReg()
	if root.byName == nil {
		root.byName = make(map[string]*metric)
	}
	if m, ok := root.byName[name]; ok && m.kind == kind {
		if fn != nil {
			m.collect = append(m.collect, fn)
		}
		if hfn != nil {
			m.collectHist = append(m.collectHist, hfn)
		}
		return
	}
	m := &metric{name: name, help: help, kind: kind}
	if fn != nil {
		m.collect = append(m.collect, fn)
	}
	if hfn != nil {
		m.collectHist = append(m.collectHist, hfn)
	}
	root.metrics = append(root.metrics, m)
	root.byName[name] = m
}

// Counter registers a single-sample counter read from fn at scrape time.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.add(name, help, counterKind,
		func() []Sample { return []Sample{{Value: fn()}} }, nil)
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, fn func() []Sample) {
	r.add(name, help, counterKind, fn, nil)
}

// Gauge registers a single-sample gauge read from fn at scrape time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.add(name, help, gaugeKind,
		func() []Sample { return []Sample{{Value: fn()}} }, nil)
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, fn func() []Sample) {
	r.add(name, help, gaugeKind, fn, nil)
}

// Histogram registers a labelled histogram family; fn returns consistent
// snapshots (the caller must copy under its own lock if the histogram is
// concurrently written).
func (r *Registry) Histogram(name, help string, fn func() []HistSample) {
	r.add(name, help, histogramKind, nil, fn)
}

// WriteTo renders every registered metric in the Prometheus text format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, m := range r.rootReg().metrics {
		fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		if m.kind == histogramKind {
			for _, fn := range m.collectHist {
				for _, hs := range fn() {
					renderHist(&b, m.name, hs)
				}
			}
			continue
		}
		for _, fn := range m.collect {
			for _, s := range fn() {
				b.WriteString(m.name)
				writeLabels(&b, s.Labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.Value))
				b.WriteByte('\n')
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// Render returns the text exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteTo(&b) //nolint:errcheck — strings.Builder cannot fail
	return b.String()
}

// Handler serves the registry at any path, Prometheus content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w) //nolint:errcheck — nothing useful to do on a client hangup
	})
}

func renderHist(b *strings.Builder, name string, hs HistSample) {
	h := hs.H
	if h == nil {
		return
	}
	// Cumulative buckets; underflow mass is below the first upper edge.
	cum := h.Under
	for i := range h.Buckets {
		cum += h.Buckets[i]
		upper := h.BucketHi(i)
		b.WriteString(name + "_bucket")
		writeLabels(b, append(append([]Label(nil), hs.Labels...), Label{"le", formatFloat(upper)}))
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(name + "_bucket")
	writeLabels(b, append(append([]Label(nil), hs.Labels...), Label{"le", "+Inf"}))
	fmt.Fprintf(b, " %d\n", h.N())
	b.WriteString(name + "_count")
	writeLabels(b, hs.Labels)
	fmt.Fprintf(b, " %d\n", h.N())
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	// Stable output: sort by key, except "le" always sorts last by
	// Prometheus convention.
	sorted := append([]Label(nil), labels...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if (sorted[i].Key == "le") != (sorted[j].Key == "le") {
			return sorted[j].Key == "le"
		}
		return sorted[i].Key < sorted[j].Key
	})
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
