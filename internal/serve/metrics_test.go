package serve

import (
	"strings"
	"testing"

	"hrtsched/internal/stats"
)

func TestRegistryRendersPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "A counter.", func() float64 { return 42 })
	r.Gauge("test_depth", "A gauge.", func() float64 { return 3.5 })
	r.GaugeVec("test_labelled", "A labelled gauge.", func() []Sample {
		return []Sample{
			{Labels: []Label{{"shard", "0"}}, Value: 1},
			{Labels: []Label{{"shard", "1"}}, Value: 2},
		}
	})
	text := r.Render()
	for _, want := range []string{
		"# HELP test_total A counter.",
		"# TYPE test_total counter",
		"test_total 42",
		"# TYPE test_depth gauge",
		"test_depth 3.5",
		`test_labelled{shard="0"} 1`,
		`test_labelled{shard="1"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestRegistryHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(0, 100, 4) // buckets [0,25) [25,50) [50,75) [75,100)
	for _, x := range []float64{10, 30, 30, 60, 120} {
		h.Add(x)
	}
	r := NewRegistry()
	r.Histogram("lat_us", "Latency.", func() []HistSample {
		return []HistSample{{Labels: []Label{{"shard", "0"}}, H: h}}
	})
	text := r.Render()
	for _, want := range []string{
		"# TYPE lat_us histogram",
		`lat_us_bucket{shard="0",le="25"} 1`,
		`lat_us_bucket{shard="0",le="50"} 3`,
		`lat_us_bucket{shard="0",le="75"} 4`,
		`lat_us_bucket{shard="0",le="100"} 4`,
		`lat_us_bucket{shard="0",le="+Inf"} 5`, // overflow sample
		`lat_us_count{shard="0"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("esc", "Escapes.", func() []Sample {
		return []Sample{{Labels: []Label{{"k", "a\"b\\c\nd"}}, Value: 1}}
	})
	if got := r.Render(); !strings.Contains(got, `esc{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("bad escaping:\n%s", got)
	}
}
