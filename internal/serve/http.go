package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hrtsched/internal/core"
	"hrtsched/internal/plan"
)

// analyzeRequest is the wire form of POST /v1/analyze and /v1/capacity.
// Task fields reuse plan.Task's JSON tags (period_ns, slice_ns).
type analyzeRequest struct {
	Tasks         plan.TaskSet `json:"tasks"`
	ProbePeriodNs int64        `json:"probe_period_ns,omitempty"` // capacity only
}

type errorResponse struct {
	Error        string `json:"error"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterNs int64  `json:"retry_after_ns,omitempty"`
}

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/analyze  {"tasks":[{"period_ns":...,"slice_ns":...}]} -> plan.Verdict
//	POST /v1/capacity {"tasks":[...],"probe_period_ns":N}          -> plan.CapacityReport
//	GET  /metrics                                                   Prometheus text
//	GET  /healthz                                                   liveness JSON
//
// Overload sheds answer 429 with a Retry-After header and a structured
// body. Cached and uncached analyze answers are byte-identical: the cache
// indicator travels in the X-Hrtd-Cache header, never the body.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/capacity", s.handleCapacity)
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleAnalyze(w http.ResponseWriter, req *http.Request) {
	var body analyzeRequest
	if !decodeQuery(w, req, &body) {
		return
	}
	v, cached, err := s.Analyze(body.Tasks)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if cached {
		w.Header().Set("X-Hrtd-Cache", "hit")
	} else {
		w.Header().Set("X-Hrtd-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCapacity(w http.ResponseWriter, req *http.Request) {
	var body analyzeRequest
	if !decodeQuery(w, req, &body) {
		return
	}
	rep, err := s.Capacity(body.Tasks, body.ProbePeriodNs)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"shards":      len(s.shards),
		"queue_depth": s.QueueDepth(),
	})
}

func decodeQuery(w http.ResponseWriter, req *http.Request, into *analyzeRequest) bool {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return false
	}
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return false
	}
	return true
}

func writeQueryError(w http.ResponseWriter, err error) {
	var ae *core.AdmissionError
	switch {
	case errors.As(err, &ae):
		// Load shed: tell the client when to come back.
		if ae.RetryAfterNs > 0 {
			secs := (ae.RetryAfterNs + 999_999_999) / 1_000_000_000
			w.Header().Set("Retry-After", fmt.Sprint(secs))
		}
		writeJSON(w, http.StatusTooManyRequests, errorResponse{
			Error: err.Error(), Reason: ae.Reason, RetryAfterNs: ae.RetryAfterNs,
		})
	case errors.Is(err, ErrServerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n')) //nolint:errcheck — client hangup
}
