package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"hrtsched/internal/core"
	"hrtsched/internal/dag"
	"hrtsched/internal/plan"
	"hrtsched/internal/repl"
)

// analyzeRequest is the wire form of POST /v1/analyze and /v1/capacity.
// Task fields reuse plan.Task's JSON tags (period_ns, slice_ns).
type analyzeRequest struct {
	Tasks         plan.TaskSet `json:"tasks"`
	ProbePeriodNs int64        `json:"probe_period_ns,omitempty"` // capacity only
}

// placeRequest is the wire form of POST /v1/cluster/place.
type placeRequest struct {
	ID    string       `json:"id"`
	Tasks plan.TaskSet `json:"tasks"`
}

// analyzeBatchRequest is the wire form of POST /v1/analyze-batch: many
// analyzeRequest items answered in one round trip.
type analyzeBatchRequest struct {
	Items []analyzeRequest `json:"items"`
}

// placeBatchRequest is the wire form of POST /v1/cluster/place-batch.
type placeBatchRequest struct {
	Items []placeRequest `json:"items"`
}

// placeBatchItem is one entry of the place-batch response envelope:
// exactly one of Result or Error is set. Result is byte-identical to the
// single-item /v1/cluster/place body for the same request; Error is the
// same APIError envelope the single route would answer with.
type placeBatchItem struct {
	ID     string       `json:"id"`
	Result *PlaceResult `json:"result,omitempty"`
	Error  *APIError    `json:"error,omitempty"`
}

// DefaultMaxBatchItems is the default cap on the item count of one batch
// request; larger batches answer 400 so a client cannot queue unbounded
// work behind one POST. The effective cap is Config.MaxBatchItems /
// ClusterConfig.MaxBatchItems and is quoted in the 400 body, so a router
// sizing sub-batches can discover it from the error envelope.
const DefaultMaxBatchItems = 1024

// idRequest is the wire form of POST /v1/cluster/remove.
type idRequest struct {
	ID string `json:"id"`
}

// nodeRequest is the wire form of POST /v1/cluster/drain and /undrain.
type nodeRequest struct {
	Node int `json:"node"`
}

// dagRequest is the wire form of POST /v1/dag/place and /v1/dag/analyze
// (which ignores ID). Analyzer defaults to "classical"; see
// dag.AnalyzerNames for the accepted values.
type dagRequest struct {
	ID       string   `json:"id,omitempty"`
	Task     dag.Task `json:"task"`
	Analyzer string   `json:"analyzer,omitempty"`
}

// APIError is the one JSON error envelope every v1 route answers with:
//
//	{"code":"overloaded","reason":"shard 3 queue full (1024 deep)","retry_after_ms":1}
//
// Code is the machine-readable class (bad_request, method_not_allowed,
// overloaded, conflict, not_found, canceled, unavailable, internal);
// Reason is the human detail; RetryAfterMs is set only on overload sheds
// and mirrors the Retry-After header.
type APIError struct {
	Code         string `json:"code"`
	Reason       string `json:"reason"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	// DAGCode and BlockingPath carry the typed detail of a /v1/dag/*
	// structural rejection (dag.ErrorCode tag; the offending node path for
	// a precedence cycle). omitempty keeps every other route's envelope
	// byte-identical to previous releases.
	DAGCode      string `json:"dag_code,omitempty"`
	BlockingPath []int  `json:"blocking_path,omitempty"`
}

// statusClientClosedRequest is nginx's conventional status for a request
// whose client canceled; net/http has no named constant for it.
const statusClientClosedRequest = 499

// Handler returns the daemon's HTTP mux without cluster routes; it is
// HandlerWithCluster(nil). See HandlerWithCluster for the route table.
func (s *Server) Handler() http.Handler { return s.HandlerWithCluster(nil) }

// HandlerWithCluster returns the daemon's HTTP mux:
//
//	POST /v1/analyze       {"tasks":[{"period_ns":...,"slice_ns":...}]} -> plan.Verdict
//	POST /v1/analyze-batch {"items":[{"tasks":[...]},...]}         -> {"items":[plan.Verdict,...]}
//	POST /v1/capacity  {"tasks":[...],"probe_period_ns":N}          -> plan.CapacityReport
//	POST /v1/cluster/place     {"id":"...","tasks":[...]}           -> PlaceResult
//	POST /v1/cluster/place-batch {"items":[{"id":...,"tasks":[...]},...]} -> {"items":[{id,result|error},...]}
//	POST /v1/cluster/remove    {"id":"..."}                         -> {"verdict":plan.Verdict}
//	POST /v1/cluster/drain     {"node":N}                           -> DrainReport
//	POST /v1/cluster/undrain   {"node":N}                           -> {"node":N}
//	POST /v1/cluster/rebalance {}                                   -> {"moved":N}
//	GET  /v1/cluster/status                                         -> ClusterStatus
//	POST /v1/dag/place   {"id":"...","task":{...},"analyzer":"..."} -> DAGPlaceResult
//	POST /v1/dag/analyze {"task":{...},"analyzer":"..."}            -> dag.Result
//	POST /v1/simulate  {"scenario":{...},"seed":N}                  -> whatif.Report
//	GET  /metrics                                                    Prometheus text
//	GET  /healthz                                                    liveness JSON
//
// The cluster routes are registered only when c is non-nil; without a
// cluster they answer 404 with the standard envelope. Every v1 error is
// the APIError envelope; overload sheds answer 429 with a Retry-After
// header whose value (in whole seconds, rounded up) mirrors the body's
// retry_after_ms. Cached and uncached analyze answers are byte-identical:
// the cache indicator travels in the X-Hrtd-Cache header, never the body.
//
// The pre-v1 aliases /analyze and /capacity are retired: they answer
// 410 Gone with the envelope and a Link header naming the /v1 successor.
func (s *Server) HandlerWithCluster(c *Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.handleAnalyze)
	mux.HandleFunc("/v1/analyze-batch", s.handleAnalyzeBatch)
	mux.HandleFunc("/v1/capacity", s.handleCapacity)
	mux.HandleFunc("/v1/simulate", s.handleSimulate)
	mux.HandleFunc("/analyze", gone("/v1/analyze"))
	mux.HandleFunc("/capacity", gone("/v1/capacity"))
	if c != nil {
		mux.HandleFunc("/v1/cluster/place", c.handlePlace)
		mux.HandleFunc("/v1/cluster/place-batch", c.handlePlaceBatch)
		mux.HandleFunc("/v1/cluster/remove", c.handleRemove)
		mux.HandleFunc("/v1/cluster/drain", c.handleDrain)
		mux.HandleFunc("/v1/cluster/undrain", c.handleUndrain)
		mux.HandleFunc("/v1/cluster/rebalance", c.handleRebalance)
		mux.HandleFunc("/v1/cluster/status", c.handleStatus)
		mux.HandleFunc("/v1/dag/place", c.handleDAGPlace)
		mux.HandleFunc("/v1/dag/analyze", c.handleDAGAnalyze)
		if c.repl != nil {
			// Peer-to-peer consensus RPCs (append, vote, timeout-now).
			h := repl.Handler(c.repl)
			mux.Handle(repl.PathAppend, h)
			mux.Handle(repl.PathVote, h)
			mux.Handle(repl.PathTimeoutNow, h)
		}
	}
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no such route: "+req.URL.Path, 0)
	})
	return mux
}

// gone answers a retired pre-v1 alias: 410 with the envelope and a Link
// header naming the /v1 successor. The aliases shipped deprecated (RFC
// 9745 Deprecation header) for two releases before retirement.
func gone(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		writeError(w, http.StatusGone, "gone",
			fmt.Sprintf("%s was retired; use %s", req.URL.Path, successor), 0)
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, req *http.Request) {
	var body analyzeRequest
	if !decodeQuery(w, req, &body) {
		return
	}
	v, cached, err := s.AnalyzeContext(req.Context(), body.Tasks)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if cached {
		w.Header().Set("X-Hrtd-Cache", "hit")
	} else {
		w.Header().Set("X-Hrtd-Cache", "miss")
	}
	writeJSON(w, http.StatusOK, v)
}

// handleAnalyzeBatch answers many analyze items in one envelope. Each
// item's verdict is byte-identical to the single-route answer for the
// same task set; the per-item cache bits travel as a comma-joined
// X-Hrtd-Cache header ("hit,miss,..."). The batch is all-or-nothing on
// error, matching AnalyzeBatchContext's contract.
func (s *Server) handleAnalyzeBatch(w http.ResponseWriter, req *http.Request) {
	var body analyzeBatchRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if len(body.Items) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d items exceeds the %d-item cap", len(body.Items), s.cfg.MaxBatchItems), 0)
		return
	}
	sets := make([]plan.TaskSet, len(body.Items))
	for i, it := range body.Items {
		sets[i] = it.Tasks
	}
	verdicts, cached, err := s.AnalyzeBatchContext(req.Context(), sets)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	bits := make([]string, len(cached))
	for i, hit := range cached {
		if hit {
			bits[i] = "hit"
		} else {
			bits[i] = "miss"
		}
	}
	w.Header().Set("X-Hrtd-Cache", strings.Join(bits, ","))
	writeJSON(w, http.StatusOK, map[string]any{"items": verdicts})
}

func (s *Server) handleCapacity(w http.ResponseWriter, req *http.Request) {
	var body analyzeRequest
	if !decodeQuery(w, req, &body) {
		return
	}
	rep, err := s.CapacityContext(req.Context(), body.Tasks, body.ProbePeriodNs)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// redirectToLeader answers a NotLeaderError with a 307 to the same path
// on the leader (307 preserves the method and body, so a client that
// follows it re-issues the identical mutation). Returns false when err is
// anything else, or when no leader URL is known — the caller falls back
// to writeQueryError's 503.
func (c *Cluster) redirectToLeader(w http.ResponseWriter, req *http.Request, err error) bool {
	var nl *NotLeaderError
	if !errors.As(err, &nl) || nl.LeaderURL == "" {
		return false
	}
	c.redirects.Add(1)
	w.Header().Set("Location", strings.TrimSuffix(nl.LeaderURL, "/")+req.URL.Path)
	writeError(w, http.StatusTemporaryRedirect, "not_leader", err.Error(), 0)
	return true
}

func (c *Cluster) handlePlace(w http.ResponseWriter, req *http.Request) {
	var body placeRequest
	if !decodeBody(w, req, &body) {
		return
	}
	res, err := c.Place(req.Context(), body.ID, body.Tasks)
	if err != nil {
		if !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handlePlaceBatch places many gangs in one request. The batch always
// answers 200 with one envelope item per input, in input order; each item
// carries either the PlaceResult the single route would have returned or
// the APIError envelope it would have answered with. The one exception is
// leadership: when the items fail with a redirectable NotLeaderError the
// whole batch answers 307 to the leader, so a client that follows it
// re-issues the identical batch there.
func (c *Cluster) handlePlaceBatch(w http.ResponseWriter, req *http.Request) {
	var body placeBatchRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if len(body.Items) > c.cfg.MaxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d items exceeds the %d-item cap", len(body.Items), c.cfg.MaxBatchItems), 0)
		return
	}
	items := make([]BatchPlaceItem, len(body.Items))
	for i, it := range body.Items {
		items[i] = BatchPlaceItem{ID: it.ID, Tasks: it.Tasks}
	}
	results := c.PlaceBatch(req.Context(), items)
	out := make([]placeBatchItem, len(results))
	for i, r := range results {
		out[i].ID = r.ID
		if r.Err != nil {
			if c.redirectToLeader(w, req, r.Err) {
				return
			}
			_, e, _ := queryError(r.Err)
			out[i].Error = &e
			continue
		}
		res := r.Result
		out[i].Result = &res
	}
	writeJSON(w, http.StatusOK, map[string]any{"items": out})
}

// writeDAGError answers a structural DAG rejection: 422 with the uniform
// envelope carrying the typed dag.ErrorCode and, for a precedence cycle,
// the blocking node path. Returns false for any other error.
func writeDAGError(w http.ResponseWriter, err error) bool {
	var verr *dag.ValidationError
	if !errors.As(err, &verr) {
		return false
	}
	writeJSON(w, http.StatusUnprocessableEntity, APIError{
		Code:         "invalid_dag",
		Reason:       verr.Error(),
		DAGCode:      string(verr.Code),
		BlockingPath: verr.Path,
	})
	return true
}

func (c *Cluster) handleDAGPlace(w http.ResponseWriter, req *http.Request) {
	var body dagRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if _, err := dag.NewAnalyzer(body.Analyzer); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	res, err := c.PlaceDAG(req.Context(), body.ID, body.Task, body.Analyzer)
	if err != nil {
		if !writeDAGError(w, err) && !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	// Analytical and placement rejections are 200s: the Result carries the
	// typed reason (path-overrun, deadline-miss) and the blocking path.
	writeJSON(w, http.StatusOK, res)
}

func (c *Cluster) handleDAGAnalyze(w http.ResponseWriter, req *http.Request) {
	var body dagRequest
	if !decodeBody(w, req, &body) {
		return
	}
	rta, err := dag.NewAnalyzer(body.Analyzer)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	res, err := dag.New(c.cfg.Spec, rta).AnalyzeDAG(&body.Task)
	if err != nil {
		if !writeDAGError(w, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Cluster) handleRemove(w http.ResponseWriter, req *http.Request) {
	var body idRequest
	if !decodeBody(w, req, &body) {
		return
	}
	v, err := c.Remove(req.Context(), body.ID)
	if err != nil {
		if !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"verdict": v})
}

func (c *Cluster) handleDrain(w http.ResponseWriter, req *http.Request) {
	var body nodeRequest
	if !decodeBody(w, req, &body) {
		return
	}
	// Detached context: a client hangup must not abort a multi-step
	// admin operation halfway through its moves.
	rep, err := c.Drain(context.WithoutCancel(req.Context()), body.Node)
	if err != nil {
		if !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Cluster) handleUndrain(w http.ResponseWriter, req *http.Request) {
	var body nodeRequest
	if !decodeBody(w, req, &body) {
		return
	}
	if err := c.Undrain(body.Node); err != nil {
		if !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": body.Node})
}

func (c *Cluster) handleRebalance(w http.ResponseWriter, req *http.Request) {
	var body struct{}
	if !decodeBody(w, req, &body) {
		return
	}
	// Detached for the same reason as handleDrain.
	moved, err := c.Rebalance(context.WithoutCancel(req.Context()))
	if err != nil {
		if !c.redirectToLeader(w, req, err) {
			writeQueryError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"moved": moved})
}

func (c *Cluster) handleStatus(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", 0)
		return
	}
	// Status is served on every replica — a follower answers its durable
	// view (the fold of the committed log prefix it has applied), with
	// staleness headers so a client can judge how far behind it may be.
	if c.repl != nil {
		st := c.repl.Status()
		w.Header().Set("X-Hrtd-Repl-Role", st.RoleName)
		w.Header().Set("X-Hrtd-Repl-Term", fmt.Sprint(st.Term))
		w.Header().Set("X-Hrtd-Repl-Applied-Lsn", fmt.Sprint(st.AppliedLSN))
		w.Header().Set("X-Hrtd-Repl-Commit-Lsn", fmt.Sprint(st.CommitLSN))
		w.Header().Set("X-Hrtd-Repl-Leader-Contact-Ms", fmt.Sprint(st.MsSinceLeaderContact))
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only", 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"shards":      len(s.shards),
		"queue_depth": s.QueueDepth(),
	})
}

func decodeQuery(w http.ResponseWriter, req *http.Request, into *analyzeRequest) bool {
	return decodeBody(w, req, into)
}

// decodeBody parses a POST body into `into`, answering the envelope on
// any protocol error.
func decodeBody(w http.ResponseWriter, req *http.Request, into any) bool {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only", 0)
		return false
	}
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return false
	}
	return true
}

// queryError maps a session error to its v1 envelope: the HTTP status
// the single-item routes answer with, the APIError body, and the
// Retry-After header value in whole seconds (0 = no header). Batch
// routes embed the envelope per item; writeQueryError writes it whole.
func queryError(err error) (status int, e APIError, retryAfterSecs int64) {
	var ae *core.AdmissionError
	switch {
	case errors.As(err, &ae):
		// Load shed: tell the client when to come back, in the header
		// (whole seconds, rounded up) and the body (milliseconds).
		ms := (ae.RetryAfterNs + 999_999) / 1_000_000
		if ae.RetryAfterNs > 0 {
			retryAfterSecs = (ae.RetryAfterNs + 999_999_999) / 1_000_000_000
		}
		return http.StatusTooManyRequests, APIError{Code: "overloaded", Reason: err.Error(), RetryAfterMs: ms}, retryAfterSecs
	case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrPendingID):
		return http.StatusConflict, APIError{Code: "conflict", Reason: err.Error()}, 0
	case errors.Is(err, ErrUnknownID), errors.Is(err, ErrUnknownNode):
		return http.StatusNotFound, APIError{Code: "not_found", Reason: err.Error()}, 0
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest, APIError{Code: "canceled", Reason: err.Error()}, 0
	case errors.As(err, new(*NotLeaderError)), errors.Is(err, ErrNoLeader), errors.Is(err, ErrLeaderNotReady):
		// Replica cannot take the mutation right now and no redirect was
		// possible: tell the client when to retry.
		return http.StatusServiceUnavailable, APIError{Code: "no_leader", Reason: err.Error(), RetryAfterMs: 1000}, 1
	case errors.Is(err, ErrIndeterminate):
		// The mutation MAY have committed; the client must re-issue the
		// same id and treat a duplicate-id conflict as success.
		return http.StatusServiceUnavailable, APIError{Code: "indeterminate", Reason: err.Error(), RetryAfterMs: 1000}, 1
	case errors.Is(err, ErrServerClosed), errors.Is(err, ErrClusterClosed):
		return http.StatusServiceUnavailable, APIError{Code: "unavailable", Reason: err.Error()}, 0
	default:
		return http.StatusInternalServerError, APIError{Code: "internal", Reason: err.Error()}, 0
	}
}

// writeQueryError maps a session error to the v1 envelope.
func writeQueryError(w http.ResponseWriter, err error) {
	status, e, secs := queryError(err)
	if secs > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(secs))
	}
	writeJSON(w, status, e)
}

// QueryError maps a session error to its v1 envelope — the exported form
// of the mapping the single-item routes use, for front-ends (the shard
// router) that must answer with byte-identical envelopes.
func QueryError(err error) (status int, e APIError, retryAfterSecs int64) {
	return queryError(err)
}

// WriteQueryError writes the v1 envelope for err, including the
// Retry-After header when the mapping calls for one.
func WriteQueryError(w http.ResponseWriter, err error) { writeQueryError(w, err) }

// WriteAPIError writes a pre-built envelope with the given status and
// optional Retry-After header (whole seconds; 0 = no header).
func WriteAPIError(w http.ResponseWriter, status int, e APIError, retryAfterSecs int64) {
	if retryAfterSecs > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSecs))
	}
	writeJSON(w, status, e)
}

// WriteError writes the envelope for an ad-hoc code/reason pair.
func WriteError(w http.ResponseWriter, status int, code, reason string, retryAfterMs int64) {
	writeError(w, status, code, reason, retryAfterMs)
}

// WriteJSON writes v as the uniform JSON response (trailing newline
// included), answering 500 if it cannot marshal.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// DecodeBody parses a POST body into `into` with unknown fields rejected,
// answering the envelope on any protocol error. Returns false when the
// response has already been written.
func DecodeBody(w http.ResponseWriter, req *http.Request, into any) bool {
	return decodeBody(w, req, into)
}

// WriteDAGErrorResponse answers a structural DAG rejection (422 with the
// typed dag_code envelope) and reports whether err was one. Front-ends
// replicating the /v1/dag/* contract use it before falling back to
// QueryError.
func WriteDAGErrorResponse(w http.ResponseWriter, err error) bool {
	return writeDAGError(w, err)
}

func writeError(w http.ResponseWriter, status int, code, reason string, retryAfterMs int64) {
	writeJSON(w, status, APIError{Code: code, Reason: reason, RetryAfterMs: retryAfterMs})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(buf, '\n')) //nolint:errcheck — client hangup
}
