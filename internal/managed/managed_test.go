package managed

import (
	"testing"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
)

func boot(t *testing.T, seed uint64) *core.Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(2)
	m := machine.New(spec, seed)
	return core.Boot(m, core.DefaultConfig(spec))
}

func baseCfg(strategy GCStrategy) Config {
	return Config{
		CPU:             1,
		Strategy:        strategy,
		NurseryBytes:    64 << 10,
		AllocBytes:      1 << 10,
		AllocCostCycles: 5_000,
		GCCycles:        650_000, // 500us of collection
		GCDeadlineNs:    3_000_000,
		GCPriority:      60,
	}
}

func TestCollectionsHappenAndHeapResets(t *testing.T) {
	k := boot(t, 221)
	ten := MustNew(k, baseCfg(InlineGC))
	k.RunNs(60_000_000)
	if ten.Collections < 10 {
		t.Fatalf("collections = %d", ten.Collections)
	}
	if ten.HeapUsed() > ten.cfg.NurseryBytes {
		t.Fatalf("heap overflow: %d", ten.HeapUsed())
	}
	if ten.Ops < 1000 {
		t.Fatalf("mutator starved: %d ops", ten.Ops)
	}
}

func TestInlinePauseMatchesGCCostWhenAlone(t *testing.T) {
	k := boot(t, 222)
	ten := MustNew(k, baseCfg(InlineGC))
	k.RunNs(60_000_000)
	gcNs := k.Clocks[1].CyclesToNanos(ten.cfg.GCCycles)
	mean := ten.PauseNs.Mean()
	if mean < float64(gcNs) || mean > float64(gcNs)*1.2 {
		t.Fatalf("alone-in-the-world inline pause %.0fns, want ~%dns", mean, gcNs)
	}
}

func TestSporadicGCBoundsPausesUnderAperiodicLoad(t *testing.T) {
	// The point of the sporadic class: sharing the CPU with an equal-
	// priority aperiodic compute thread (round-robin, 100 ms quanta), an
	// inline collection that triggers near the mutator's quantum boundary
	// stalls for the competitor's entire quantum — ~100 ms. A sporadic-
	// admitted collection preempts the competitor by EDF and is guaranteed
	// to complete within its deadline.
	cfg := baseCfg(SporadicGC)
	cfg.GCCycles = 260_000       // 200 us of collection...
	cfg.GCDeadlineNs = 2_500_000 // ...guaranteed within 2.5 ms: 8% sporadic util
	pause := func(strategy GCStrategy, seed uint64) (worst int64, rejected int64, collections int64) {
		k := boot(t, seed)
		k.Spawn("competitor", 1, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			return core.Compute{Cycles: 50_000}
		}))
		c := cfg
		c.Strategy = strategy
		ten := MustNew(k, c)
		k.RunNs(600_000_000) // 600 ms: several quantum rotations
		return ten.WorstPause, ten.GCRejected(), ten.Collections
	}
	inlineWorst, _, coll1 := pause(InlineGC, 223)
	sporadicWorst, rejected, coll2 := pause(SporadicGC, 224)

	// In sporadic mode the woken mutator re-queues behind the competitor's
	// full quantum after each collection, so collections are rarer — the
	// honest round-robin consequence.
	if coll1 < 5 || coll2 < 3 {
		t.Fatalf("too few collections: inline=%d sporadic=%d", coll1, coll2)
	}
	if rejected != 0 {
		t.Fatalf("sporadic admissions rejected: %d", rejected)
	}
	// Inline collection stalls across the competitor's quantum at least
	// once; sporadic never exceeds its deadline (plus wake overhead).
	if inlineWorst < 50_000_000 {
		t.Fatalf("inline worst pause %dns — quantum stall never observed", inlineWorst)
	}
	if sporadicWorst > cfg.GCDeadlineNs+1_000_000 {
		t.Fatalf("sporadic worst pause %dns exceeds the %dns deadline bound",
			sporadicWorst, cfg.GCDeadlineNs)
	}
}

func TestGCNeverDisturbsRTThread(t *testing.T) {
	// Whatever the GC strategy, a periodic hard real-time thread sharing
	// the CPU keeps every deadline.
	for _, strategy := range []GCStrategy{InlineGC, SporadicGC} {
		k := boot(t, 226+uint64(strategy))
		admitted := false
		hog := k.Spawn("rt", 1, core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
			if !admitted {
				admitted = true
				return core.ChangeConstraints{C: core.PeriodicConstraints(0, 100_000, 60_000)}
			}
			return core.Compute{Cycles: 20_000}
		}))
		ten := MustNew(k, baseCfg(strategy))
		k.RunNs(120_000_000)
		if hog.Misses != 0 {
			t.Fatalf("strategy %d: GC disturbed the RT thread (%d misses)", strategy, hog.Misses)
		}
		if ten.Collections < 5 {
			t.Fatalf("strategy %d: collections = %d", strategy, ten.Collections)
		}
	}
}

func TestSporadicFallbackWhenReservationExhausted(t *testing.T) {
	// A collection too large for the 10% sporadic reservation falls back
	// to aperiodic collection instead of wedging.
	k := boot(t, 225)
	cfg := baseCfg(SporadicGC)
	cfg.GCCycles = 1_300_000     // 1ms of work...
	cfg.GCDeadlineNs = 2_000_000 // ...in 2ms: 50% >> 10% reservation
	ten := MustNew(k, cfg)
	k.RunNs(100_000_000)
	if ten.Collections < 3 {
		t.Fatalf("collections = %d", ten.Collections)
	}
	if ten.GCRejected() != ten.Collections {
		t.Fatalf("expected every admission to fall back: %d of %d",
			ten.GCRejected(), ten.Collections)
	}
}
