// Package managed is a miniature managed-language tenant — standing in for
// the Racket port the paper lists among the HRT run-times (Section 2). A
// mutator thread allocates into a nursery; when it fills, the world stops
// for a collection. The interesting scheduling question is what happens
// when the tenant time-shares a CPU with hard real-time threads:
//
//   - InlineGC runs the collection in the mutator itself, at aperiodic
//     priority: real-time threads are untouched, but the mutator's pause
//     stretches with whatever CPU share is left over.
//   - SporadicGC requests each collection as a sporadic-admitted burst
//     (phase, size, deadline): the kernel guarantees the collection
//     completes within its deadline, bounding the pause — the sporadic
//     class doing exactly what Section 3.1 designed it for.
package managed

import (
	"fmt"

	"hrtsched/internal/core"
	"hrtsched/internal/stats"
)

// GCStrategy selects how collections are scheduled.
type GCStrategy uint8

const (
	// InlineGC: the mutator collects in its own (aperiodic) time.
	InlineGC GCStrategy = iota
	// SporadicGC: a dedicated collector thread admits a sporadic burst per
	// collection.
	SporadicGC
)

// Config sizes the tenant.
type Config struct {
	CPU      int
	Strategy GCStrategy

	// NurseryBytes triggers a collection when exceeded.
	NurseryBytes int64
	// AllocBytes and AllocCostCycles describe one mutator operation.
	AllocBytes      int64
	AllocCostCycles int64
	// GCCycles is the cost of one collection.
	GCCycles int64
	// GCDeadlineNs bounds a sporadic collection (size derived from
	// GCCycles). Ignored by InlineGC.
	GCDeadlineNs int64
	// GCPriority is the collector's aperiodic afterlife priority.
	GCPriority uint32
}

// Tenant is one managed-runtime instance.
type Tenant struct {
	k   *core.Kernel
	cfg Config

	mutator   *core.Thread
	collector *core.Thread

	heapUsed   int64
	inGC       bool
	gcStartNs  int64
	gcRejected int64

	// Collections counts completed GCs; PauseNs aggregates mutator stalls
	// (trigger to resume); Ops counts mutator operations.
	Collections int64
	PauseNs     stats.Summary
	WorstPause  int64
	Ops         int64
}

// New spawns the tenant on its CPU. It returns an error for non-positive
// nursery or allocation sizes.
func New(k *core.Kernel, cfg Config) (*Tenant, error) {
	if cfg.NurseryBytes <= 0 || cfg.AllocBytes <= 0 {
		return nil, fmt.Errorf("managed: nursery and allocation sizes must be positive (got nursery=%d alloc=%d)",
			cfg.NurseryBytes, cfg.AllocBytes)
	}
	t := &Tenant{k: k, cfg: cfg}
	if cfg.Strategy == SporadicGC {
		// The collector carries a high aperiodic priority so its admission
		// request (which runs in its own context) is not itself stuck
		// behind a round-robin quantum; the guarantee then comes from the
		// sporadic admission.
		t.collector = k.SpawnPriority("managed-gc", cfg.CPU, t.collectorProgram(), 10)
	}
	t.mutator = k.Spawn("managed-mutator", cfg.CPU, t.mutatorProgram())
	return t, nil
}

// MustNew is New for statically-correct call sites; it panics on error.
func MustNew(k *core.Kernel, cfg Config) *Tenant {
	t, err := New(k, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Mutator returns the mutator thread.
func (t *Tenant) Mutator() *core.Thread { return t.mutator }

// GCRejected counts sporadic admissions that fell back to aperiodic.
func (t *Tenant) GCRejected() int64 { return t.gcRejected }

// HeapUsed returns the current nursery occupancy.
func (t *Tenant) HeapUsed() int64 { return t.heapUsed }

// mutatorProgram: allocate until the nursery fills, then stop the world.
func (t *Tenant) mutatorProgram() core.Program {
	var mode int // 0 = allocate, 1 = inline-collect, 2 = blocked-for-gc
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		switch mode {
		case 1: // inline collection just finished computing
			mode = 0
			t.finishGC(tc.NowNs)
			return core.Compute{Cycles: t.cfg.AllocCostCycles}
		case 2: // woken after a sporadic collection
			mode = 0
			// Pause already recorded by the collector's finish.
			return core.Compute{Cycles: t.cfg.AllocCostCycles}
		}
		// One allocation completed.
		t.Ops++
		t.heapUsed += t.cfg.AllocBytes
		if t.heapUsed < t.cfg.NurseryBytes {
			return core.Compute{Cycles: t.cfg.AllocCostCycles}
		}
		// Nursery full: stop the world.
		t.inGC = true
		t.gcStartNs = tc.NowNs
		if t.cfg.Strategy == InlineGC {
			mode = 1
			return core.Compute{Cycles: t.cfg.GCCycles}
		}
		mode = 2
		t.k.Wake(t.collector)
		return core.Block{}
	})
}

// collectorProgram: block until triggered, admit a sporadic burst sized to
// the collection, collect, resume the mutator.
func (t *Tenant) collectorProgram() core.Program {
	gcNs := t.k.Clocks[t.cfg.CPU].CyclesToNanos(t.cfg.GCCycles)
	var phase int // 0 = idle, 1 = admitted (or fallback), 2 = collected
	return core.ProgramFunc(func(tc *core.ThreadCtx) core.Action {
		switch phase {
		case 0:
			if !t.inGC {
				return core.Block{}
			}
			phase = 1
			return core.ChangeConstraints{C: core.SporadicConstraints(
				0, gcNs, t.cfg.GCDeadlineNs, t.cfg.GCPriority)}
		case 1:
			if !tc.AdmitOK {
				// Reservation exhausted: collect at aperiodic priority.
				t.gcRejected++
			}
			phase = 2
			return core.Compute{Cycles: t.cfg.GCCycles}
		default:
			phase = 0
			t.finishGC(tc.NowNs)
			t.k.Wake(t.mutator)
			return core.Block{}
		}
	})
}

// finishGC resets the nursery and records the pause.
func (t *Tenant) finishGC(nowNs int64) {
	t.heapUsed = t.heapUsed / 4 // survivors
	t.inGC = false
	t.Collections++
	pause := nowNs - t.gcStartNs
	t.PauseNs.Add(float64(pause))
	if pause > t.WorstPause {
		t.WorstPause = pause
	}
}
