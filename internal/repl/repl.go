// Package repl replicates the cluster's write-ahead log across N hrtd
// replicas, leader-based: one leader assigns log positions and ships
// term-stamped WAL records to followers over a pluggable transport, and a
// record is committed — and only then acknowledged to a client — once a
// majority of replicas has it fsynced. Elections follow the classic
// highest-log-wins rule: a replica votes for a candidate only when the
// candidate's (last term, last LSN) is at least its own, so the winner of
// any election already holds every committed record and promotion never
// loses an acknowledged mutation. Heartbeats double as liveness probes in
// both directions: followers that miss them start elections with seeded
// jittered timeouts, and a leader that loses contact with a majority
// steps down (check-quorum) instead of serving stale answers forever.
//
// Records in a replicated log are enveloped as [term u64][kind u8]
// [payload] before framing, so every entry's term travels inside the
// segment files themselves and follower logs are byte-identical to the
// leader's. Kind 0 is a no-op barrier each new leader commits to
// establish its commit index; kind 1 carries an application payload
// (a durable.Record in hrtd).
//
// Compaction is disabled while replicating: followers can always catch up
// from LSN 1, so no install-snapshot RPC is needed yet. Snapshots still
// bound local replay time at boot.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Role is a replica's current protocol role.
type Role int32

const (
	// RoleFollower replicates entries from the leader and votes.
	RoleFollower Role = iota
	// RoleCandidate is mid-election.
	RoleCandidate
	// RoleLeader assigns LSNs and ships entries.
	RoleLeader
)

// String names the role for logs and metrics.
func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int32(r))
	}
}

// Entry kinds inside the term envelope.
const (
	kindNoop byte = 0
	kindApp  byte = 1
)

// envHeader is the term envelope: term (8) + kind (1).
const envHeader = 9

// encodeEntry wraps an application payload (or a noop) in the term
// envelope that goes into the WAL.
func encodeEntry(term uint64, kind byte, payload []byte) []byte {
	buf := make([]byte, envHeader+len(payload))
	binary.LittleEndian.PutUint64(buf, term)
	buf[8] = kind
	copy(buf[envHeader:], payload)
	return buf
}

// decodeEntry splits an enveloped WAL record. The payload aliases data.
func decodeEntry(data []byte) (term uint64, kind byte, payload []byte, err error) {
	if len(data) < envHeader {
		return 0, 0, nil, fmt.Errorf("repl: entry too short (%d bytes)", len(data))
	}
	kind = data[8]
	if kind != kindNoop && kind != kindApp {
		return 0, 0, nil, fmt.Errorf("repl: bad entry kind %d", kind)
	}
	return binary.LittleEndian.Uint64(data), kind, data[envHeader:], nil
}

// Entry is one log record on the wire: the LSN plus the enveloped bytes
// exactly as they sit in the leader's WAL, so follower logs stay
// byte-identical.
type Entry struct {
	LSN  uint64 `json:"lsn"`
	Data []byte `json:"data"`
}

// AppendRequest is the leader->follower replication RPC (also the
// heartbeat, with no entries).
type AppendRequest struct {
	Term      uint64  `json:"term"`
	Leader    int     `json:"leader"`
	PrevLSN   uint64  `json:"prev_lsn"`
	PrevTerm  uint64  `json:"prev_term"`
	CommitLSN uint64  `json:"commit_lsn"`
	Entries   []Entry `json:"entries,omitempty"`
}

// AppendResponse reports the follower's verdict and durable position: on
// success the leader advances the follower's match to DurableLSN, on
// failure it rewinds its next-index toward it.
type AppendResponse struct {
	Term       uint64 `json:"term"`
	Success    bool   `json:"success"`
	DurableLSN uint64 `json:"durable_lsn"`
}

// VoteRequest asks for this term's vote; LastTerm/LastLSN carry the
// election restriction (highest durable log wins).
type VoteRequest struct {
	Term      uint64 `json:"term"`
	Candidate int    `json:"candidate"`
	LastLSN   uint64 `json:"last_lsn"`
	LastTerm  uint64 `json:"last_term"`
}

// VoteResponse is the voter's answer.
type VoteResponse struct {
	Term    uint64 `json:"term"`
	Granted bool   `json:"granted"`
}

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("repl: node closed")

// NotLeaderError rejects a proposal on a non-leader; Leader is the id of
// the last known leader (-1 when no leader is known this term).
type NotLeaderError struct {
	Leader int
	Term   uint64
}

func (e *NotLeaderError) Error() string {
	if e.Leader < 0 {
		return fmt.Sprintf("repl: not leader (term %d, no leader known)", e.Term)
	}
	return fmt.Sprintf("repl: not leader (term %d, leader is replica %d)", e.Term, e.Leader)
}

// ErrLostLeadership fails proposal waiters when the proposer stepped down
// before learning the outcome: the entry may still commit under a later
// leader, so the result is indeterminate, never "rejected".
var ErrLostLeadership = errors.New("repl: leadership lost before commit (outcome indeterminate)")
