package repl

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hrtsched/internal/fault"
)

// testNet is an in-process transport fabric: every RPC consults the
// fault.NetPolicy before delivery, so partitions and drops are scripted
// from one seeded policy object.
type testNet struct {
	mu     sync.Mutex
	nodes  map[int]*Node
	policy *fault.NetPolicy
}

func (tn *testNet) set(id int, n *Node) {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	tn.nodes[id] = n
}

func (tn *testNet) get(id int) *Node {
	tn.mu.Lock()
	defer tn.mu.Unlock()
	return tn.nodes[id]
}

type testTransport struct {
	net  *testNet
	from int
}

var errNetDrop = errors.New("testnet: dropped")

func (t testTransport) deliver(peer int) (*Node, error) {
	delay, ok := t.net.policy.Admit(t.from, peer)
	if !ok {
		return nil, errNetDrop
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n := t.net.get(peer)
	if n == nil {
		return nil, fmt.Errorf("testnet: peer %d down", peer)
	}
	return n, nil
}

func (t testTransport) Append(_ context.Context, peer int, req AppendRequest) (AppendResponse, error) {
	n, err := t.deliver(peer)
	if err != nil {
		return AppendResponse{}, err
	}
	return n.HandleAppend(req), nil
}

func (t testTransport) Vote(_ context.Context, peer int, req VoteRequest) (VoteResponse, error) {
	n, err := t.deliver(peer)
	if err != nil {
		return VoteResponse{}, err
	}
	return n.HandleVote(req), nil
}

func (t testTransport) TimeoutNow(_ context.Context, peer int) error {
	n, err := t.deliver(peer)
	if err != nil {
		return err
	}
	n.HandleTimeoutNow()
	return nil
}

// appliedLog records what one replica's state machine saw.
type appliedLog struct {
	mu   sync.Mutex
	recs []string
	lsns []uint64
}

func (a *appliedLog) apply(lsn, _ uint64, payload []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs = append(a.recs, string(payload))
	a.lsns = append(a.lsns, lsn)
}

func (a *appliedLog) snapshot() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.recs...)
}

type testCluster struct {
	t       *testing.T
	net     *testNet
	dirs    []string
	applied []*appliedLog
	n       int
}

func newTestClusterRepl(t *testing.T, replicas int, seed int64) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:   t,
		net: &testNet{nodes: map[int]*Node{}, policy: fault.NewNetPolicy(seed)},
		n:   replicas,
	}
	root := t.TempDir()
	for id := 0; id < replicas; id++ {
		tc.dirs = append(tc.dirs, filepath.Join(root, fmt.Sprintf("r%d", id)))
		tc.applied = append(tc.applied, &appliedLog{})
	}
	for id := 0; id < replicas; id++ {
		tc.start(id)
	}
	t.Cleanup(func() {
		for id := 0; id < replicas; id++ {
			tc.stop(id)
		}
	})
	return tc
}

func (tc *testCluster) start(id int) *Node {
	tc.t.Helper()
	n, _, err := Open(Config{
		ID:                id,
		Replicas:          tc.n,
		Dir:               tc.dirs[id],
		Transport:         testTransport{net: tc.net, from: id},
		Apply:             tc.applied[id].apply,
		HeartbeatInterval: 5 * time.Millisecond,
		ElectionTimeout:   40 * time.Millisecond,
		Seed:              int64(id) + 100,
		Logf:              tc.t.Logf,
	})
	if err != nil {
		tc.t.Fatalf("open replica %d: %v", id, err)
	}
	tc.net.set(id, n)
	return n
}

func (tc *testCluster) stop(id int) {
	n := tc.net.get(id)
	if n == nil {
		return
	}
	tc.net.set(id, nil)
	n.Close()
}

func (tc *testCluster) node(id int) *Node { return tc.net.get(id) }

// waitLeader polls until exactly one live replica is a ready leader.
func (tc *testCluster) waitLeader(timeout time.Duration) *Node {
	tc.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leader *Node
		for id := 0; id < tc.n; id++ {
			n := tc.node(id)
			if n != nil && n.LeaderReady() {
				leader = n
			}
		}
		if leader != nil {
			return leader
		}
		time.Sleep(2 * time.Millisecond)
	}
	tc.t.Fatalf("no ready leader within %v", timeout)
	return nil
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestElectionPicksOneReadyLeader(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 1)
	leader := tc.waitLeader(2 * time.Second)
	st := leader.Status()
	if st.Role != RoleLeader || st.Term == 0 {
		t.Fatalf("leader status = %+v", st)
	}
	// The other replicas settle as followers of the same term and leader.
	waitFor(t, time.Second, "followers to adopt the leader", func() bool {
		for id := 0; id < 3; id++ {
			s := tc.node(id).Status()
			if id == st.ID {
				continue
			}
			if s.Role != RoleFollower || s.Term != st.Term || s.Leader != st.ID {
				return false
			}
		}
		return true
	})
}

func TestProposeCommitsOnMajorityAndAppliesEverywhere(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 2)
	leader := tc.waitLeader(2 * time.Second)

	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("rec-%03d", i)
		want = append(want, p)
		tk, err := leader.Propose([][]byte{[]byte(p)})
		if err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	// Commit means majority-durable; apply follows on every replica.
	for id := 0; id < 3; id++ {
		id := id
		waitFor(t, 2*time.Second, fmt.Sprintf("replica %d to apply all", id), func() bool {
			return len(tc.applied[id].snapshot()) == len(want)
		})
		got := tc.applied[id].snapshot()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("replica %d applied[%d] = %q, want %q", id, i, got[i], want[i])
			}
		}
	}
	// Follower WALs are byte-identical to the leader's durable prefix:
	// same last LSN once caught up.
	lst := leader.Status()
	waitFor(t, time.Second, "followers durable to leader's tail", func() bool {
		for id := 0; id < 3; id++ {
			if tc.node(id).Status().DurableLSN < lst.CommitLSN {
				return false
			}
		}
		return true
	})
}

func TestProposeOnFollowerNamesLeader(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 3)
	leader := tc.waitLeader(2 * time.Second)
	lid := leader.Status().ID
	fid := (lid + 1) % 3
	waitFor(t, time.Second, "follower learns leader", func() bool {
		return tc.node(fid).Status().Leader == lid
	})
	_, err := tc.node(fid).Propose([][]byte{[]byte("x")})
	var nle *NotLeaderError
	if !errors.As(err, &nle) {
		t.Fatalf("propose on follower: %v", err)
	}
	if nle.Leader != lid {
		t.Fatalf("NotLeaderError.Leader = %d, want %d", nle.Leader, lid)
	}
}

func TestFailoverAfterLeaderKillKeepsAckedRecords(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 4)
	leader := tc.waitLeader(2 * time.Second)

	var acked []string
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("pre-%d", i)
		tk, err := leader.Propose([][]byte{[]byte(p)})
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		acked = append(acked, p)
	}
	dead := leader.Status().ID
	tc.stop(dead)

	// A survivor with the full log must win and keep serving.
	leader2 := tc.waitLeader(2 * time.Second)
	if leader2.Status().ID == dead {
		t.Fatalf("dead replica still leading")
	}
	tk, err := leader2.Propose([][]byte{[]byte("post-0")})
	if err != nil {
		t.Fatalf("propose after failover: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("commit after failover: %v", err)
	}
	acked = append(acked, "post-0")

	// The killed replica restarts and converges on the same sequence.
	// (A cold start replays from the snapshot floor, so reset its
	// capture: re-applying is expected, losing acked records is not.)
	tc.applied[dead] = &appliedLog{}
	tc.start(dead)
	for id := 0; id < 3; id++ {
		id := id
		waitFor(t, 2*time.Second, fmt.Sprintf("replica %d apply convergence", id), func() bool {
			got := tc.applied[id].snapshot()
			return len(got) >= len(acked)
		})
		got := tc.applied[id].snapshot()
		for i, w := range acked {
			if got[i] != w {
				t.Fatalf("replica %d applied[%d] = %q, want %q", id, i, got[i], w)
			}
		}
	}
}

func TestPartitionedLeaderStepsDownAndDivergentSuffixIsTruncated(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 5)
	leader := tc.waitLeader(2 * time.Second)
	lid := leader.Status().ID
	o1, o2 := (lid+1)%3, (lid+2)%3

	tk, err := leader.Propose([][]byte{[]byte("committed")})
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	// Cut the leader off and write into the void: these appends land in
	// its local WAL but can never commit.
	tc.net.policy.Partition([]int{o1, o2}, []int{lid})
	var stale Ticket
	stale, err = leader.Propose([][]byte{[]byte("phantom")})
	if err != nil {
		t.Fatalf("propose into partition: %v", err)
	}

	// Check-quorum fails the waiter with an indeterminate error.
	if err := stale.Wait(); !errors.Is(err, ErrLostLeadership) {
		t.Fatalf("partitioned proposal resolved with %v, want ErrLostLeadership", err)
	}

	// The majority side elects a new leader and commits new records.
	leader2 := tc.waitLeader(2 * time.Second)
	if got := leader2.Status().ID; got == lid {
		t.Fatalf("old leader %d still ready-leader while partitioned", got)
	}
	tk2, err := leader2.Propose([][]byte{[]byte("real")})
	if err != nil {
		t.Fatalf("propose on new leader: %v", err)
	}
	if err := tk2.Wait(); err != nil {
		t.Fatalf("commit on new leader: %v", err)
	}

	// Heal: the old leader rejoins, truncates "phantom", applies "real".
	tc.net.policy.Heal()
	waitFor(t, 2*time.Second, "old leader convergence", func() bool {
		got := tc.applied[lid].snapshot()
		return len(got) >= 2 && got[len(got)-1] == "real"
	})
	for _, rec := range tc.applied[lid].snapshot() {
		if rec == "phantom" {
			t.Fatalf("unacknowledged record applied after heal: %v", tc.applied[lid].snapshot())
		}
	}
	// And its log position matches the new leader's (suffix replaced).
	st, st2 := tc.node(lid).Status(), leader2.Status()
	if st.CommitLSN < st2.CommitLSN {
		waitFor(t, time.Second, "commit convergence", func() bool {
			return tc.node(lid).Status().CommitLSN >= leader2.Status().CommitLSN
		})
	}
}

func TestTransferLeadershipPromotesFollower(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 6)
	leader := tc.waitLeader(2 * time.Second)
	tk, err := leader.Propose([][]byte{[]byte("warm")})
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	oldID := leader.Status().ID
	oldTerm := leader.Status().Term

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	target, err := leader.TransferLeadership(ctx)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if target == oldID {
		t.Fatalf("transferred to self")
	}
	waitFor(t, 2*time.Second, "successor to take over", func() bool {
		n := tc.node(target)
		return n != nil && n.LeaderReady() && n.Status().Term > oldTerm
	})
	waitFor(t, time.Second, "old leader steps down", func() bool {
		return tc.node(oldID).Status().Role == RoleFollower
	})
}

func TestSingleReplicaSelfElectsAndCommitsLocally(t *testing.T) {
	tc := newTestClusterRepl(t, 1, 7)
	leader := tc.waitLeader(2 * time.Second)
	tk, err := leader.Propose([][]byte{[]byte("solo")})
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	waitFor(t, time.Second, "apply", func() bool {
		return len(tc.applied[0].snapshot()) == 1
	})
}

func TestRestartPreservesTermAndReappliesLog(t *testing.T) {
	tc := newTestClusterRepl(t, 3, 8)
	leader := tc.waitLeader(2 * time.Second)
	for i := 0; i < 5; i++ {
		tk, err := leader.Propose([][]byte{[]byte(fmt.Sprintf("v%d", i))})
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	term := leader.Status().Term
	for id := 0; id < 3; id++ {
		tc.stop(id)
	}
	// Clear applied histories: a cold restart replays from the snapshot
	// floor (here LSN 0), so every committed record comes back.
	for id := 0; id < 3; id++ {
		tc.applied[id] = &appliedLog{}
	}
	for id := 0; id < 3; id++ {
		tc.start(id)
	}
	l2 := tc.waitLeader(2 * time.Second)
	if got := l2.Status().Term; got <= term {
		t.Fatalf("post-restart term %d, want > %d (persisted terms)", got, term)
	}
	for id := 0; id < 3; id++ {
		id := id
		waitFor(t, 2*time.Second, fmt.Sprintf("replica %d replay", id), func() bool {
			return len(tc.applied[id].snapshot()) >= 5
		})
		got := tc.applied[id].snapshot()
		for i := 0; i < 5; i++ {
			if got[i] != fmt.Sprintf("v%d", i) {
				t.Fatalf("replica %d applied[%d] = %q", id, i, got[i])
			}
		}
	}
}

func TestTermStateRoundTrip(t *testing.T) {
	buf := encodeTermState(42, 2)
	term, voted, err := decodeTermState(buf)
	if err != nil || term != 42 || voted != 2 {
		t.Fatalf("round trip = (%d,%d,%v)", term, voted, err)
	}
	buf[9]++
	if _, _, err := decodeTermState(buf); err == nil {
		t.Fatalf("corrupt term state decoded cleanly")
	}
	if _, _, err := decodeTermState(buf[:10]); err == nil {
		t.Fatalf("short term state decoded cleanly")
	}
}
