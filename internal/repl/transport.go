package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RPC paths mounted by the serving layer; the HTTP transport posts JSON
// bodies to peerURL+path and decodes the JSON response.
const (
	PathAppend     = "/repl/append"
	PathVote       = "/repl/vote"
	PathTimeoutNow = "/repl/timeoutnow"
)

// HTTPTransport reaches peers over their hrtd HTTP endpoints.
type HTTPTransport struct {
	// Peers maps replica id -> base URL ("http://host:port").
	Peers map[int]string
	// Client defaults to one with sane keep-alive settings; per-call
	// deadlines come from the caller's context.
	Client *http.Client
}

// NewHTTPTransport builds a transport over the given id -> base URL map.
func NewHTTPTransport(peers map[int]string) *HTTPTransport {
	return &HTTPTransport{
		Peers: peers,
		Client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 4,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
}

func (t *HTTPTransport) post(ctx context.Context, peer int, path string, in, out any) error {
	base, ok := t.Peers[peer]
	if !ok {
		return fmt.Errorf("repl: no address for peer %d", peer)
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: peer %d %s: HTTP %d", peer, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Append implements Transport.
func (t *HTTPTransport) Append(ctx context.Context, peer int, req AppendRequest) (AppendResponse, error) {
	var resp AppendResponse
	err := t.post(ctx, peer, PathAppend, req, &resp)
	return resp, err
}

// Vote implements Transport.
func (t *HTTPTransport) Vote(ctx context.Context, peer int, req VoteRequest) (VoteResponse, error) {
	var resp VoteResponse
	err := t.post(ctx, peer, PathVote, req, &resp)
	return resp, err
}

// TimeoutNow implements Transport.
func (t *HTTPTransport) TimeoutNow(ctx context.Context, peer int) error {
	return t.post(ctx, peer, PathTimeoutNow, struct{}{}, nil)
}

// Handler serves the three RPC endpoints for a node; the serving layer
// mounts it at the /repl/ prefix.
func Handler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathAppend, func(w http.ResponseWriter, r *http.Request) {
		var req AppendRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeRPC(w, n.HandleAppend(req))
	})
	mux.HandleFunc(PathVote, func(w http.ResponseWriter, r *http.Request) {
		var req VoteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeRPC(w, n.HandleVote(req))
	})
	mux.HandleFunc(PathTimeoutNow, func(w http.ResponseWriter, r *http.Request) {
		n.HandleTimeoutNow()
		writeRPC(w, struct{}{})
	})
	return mux
}

func writeRPC(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
