package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"hrtsched/internal/wal"
)

// The persisted term state ("hard state" in Raft terms) must hit disk
// before a replica answers a vote or speaks in a new term: forgetting a
// vote across a crash is how two leaders win the same term. The file is
// tiny and rewritten whole — magic, term, votedFor, CRC — via the usual
// tmp + fsync + rename dance so a crash mid-write leaves the old state.

const (
	termFileMagic = "hrtrepl1"
	termFileName  = "term.repl"
	termFileLen   = 8 + 8 + 8 + 4 // magic + term + votedFor + crc32c
)

var termCRC = crc32.MakeTable(crc32.Castagnoli)

func encodeTermState(term uint64, votedFor int) []byte {
	buf := make([]byte, termFileLen)
	copy(buf, termFileMagic)
	binary.LittleEndian.PutUint64(buf[8:], term)
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(votedFor)))
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], termCRC))
	return buf
}

func decodeTermState(buf []byte) (term uint64, votedFor int, err error) {
	if len(buf) != termFileLen || string(buf[:8]) != termFileMagic {
		return 0, -1, fmt.Errorf("repl: malformed term state (%d bytes)", len(buf))
	}
	if crc32.Checksum(buf[:24], termCRC) != binary.LittleEndian.Uint32(buf[24:]) {
		return 0, -1, fmt.Errorf("repl: term state CRC mismatch")
	}
	return binary.LittleEndian.Uint64(buf[8:]),
		int(int64(binary.LittleEndian.Uint64(buf[16:]))), nil
}

// writeTermState durably replaces the term file.
func writeTermState(fs wal.FS, dir string, term uint64, votedFor int) error {
	tmp := filepath.Join(dir, termFileName+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("repl: create term state: %w", err)
	}
	if _, err := f.Write(encodeTermState(term, votedFor)); err != nil {
		f.Close()
		return fmt.Errorf("repl: write term state: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("repl: sync term state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("repl: close term state: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, termFileName)); err != nil {
		return fmt.Errorf("repl: install term state: %w", err)
	}
	return nil
}

// readTermState loads the persisted term and vote; a missing file is a
// fresh replica (term 0, no vote), but an unreadable or corrupt one is an
// error — guessing "never voted" after losing a real vote breaks election
// safety.
func readTermState(fs wal.FS, dir string) (term uint64, votedFor int, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return 0, -1, fmt.Errorf("repl: list %s: %w", dir, err)
	}
	found := false
	for _, name := range names {
		if name == termFileName {
			found = true
			break
		}
	}
	if !found {
		return 0, -1, nil
	}
	f, err := fs.Open(filepath.Join(dir, termFileName))
	if err != nil {
		return 0, -1, fmt.Errorf("repl: open term state: %w", err)
	}
	defer f.Close()
	buf, err := io.ReadAll(f)
	if err != nil {
		return 0, -1, fmt.Errorf("repl: read term state: %w", err)
	}
	return decodeTermState(buf)
}
