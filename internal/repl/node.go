package repl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hrtsched/internal/wal"
)

// Transport carries the three replication RPCs to a peer replica. The
// production implementation speaks HTTP (see HTTPTransport); tests use an
// in-process transport gated by a fault.NetPolicy.
type Transport interface {
	Append(ctx context.Context, peer int, req AppendRequest) (AppendResponse, error)
	Vote(ctx context.Context, peer int, req VoteRequest) (VoteResponse, error)
	TimeoutNow(ctx context.Context, peer int) error
}

// Config wires up one replica.
type Config struct {
	// ID is this replica's index in [0, Replicas).
	ID int
	// Replicas is the cluster size; majority = Replicas/2 + 1.
	Replicas int
	// Dir holds the WAL segments and term state.
	Dir string
	// FS is the filesystem to write through; default the real one.
	FS wal.FS
	// SegmentBytes is the WAL roll threshold (0 = wal default).
	SegmentBytes int64
	// BaseLSN seeds the WAL when the directory holds no records (used
	// after a snapshot-outran-log wipe; see durable.Store).
	BaseLSN uint64
	// Transport reaches the other replicas.
	Transport Transport
	// Apply delivers committed application payloads in strict LSN order
	// from a single goroutine. No-op barrier entries are not delivered.
	Apply func(lsn, term uint64, payload []byte)
	// OnRole, if set, observes role/term transitions (called from a
	// dedicated goroutine, in order; slow callbacks may coalesce).
	OnRole func(Status)
	// HeartbeatInterval paces leader heartbeats; default 50ms.
	HeartbeatInterval time.Duration
	// ElectionTimeout is the base liveness timeout: a follower that hears
	// nothing for [T, 2T) starts an election, and a leader that loses
	// contact with a majority for T steps down. Default 10x heartbeat.
	ElectionTimeout time.Duration
	// RPCTimeout bounds each transport call; default ElectionTimeout/2.
	RPCTimeout time.Duration
	// Seed makes election jitter deterministic per replica.
	Seed int64
	// FloorTerm is the term of the last snapshot-covered entry, for
	// logs whose prefix was wiped (floor > 0).
	FloorTerm uint64
	// AppliedLSN is the caller's snapshot position: apply restarts at
	// AppliedLSN+1, and everything at or below it is known committed.
	AppliedLSN uint64
	// MaxBatch caps entries per AppendEntries RPC; default 256.
	MaxBatch int
	// Logf, if set, receives boot/role-transition log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.FS == nil {
		c.FS = wal.OSFS{}
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 10 * c.HeartbeatInterval
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = c.ElectionTimeout / 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
}

// PeerStatus is the leader's view of one follower.
type PeerStatus struct {
	ID       int    `json:"id"`
	MatchLSN uint64 `json:"match_lsn"`
	NextLSN  uint64 `json:"next_lsn"`
}

// Status is a point-in-time snapshot of the replica's protocol state.
type Status struct {
	ID         int          `json:"id"`
	Role       Role         `json:"-"`
	RoleName   string       `json:"role"`
	Term       uint64       `json:"term"`
	Leader     int          `json:"leader"` // -1 when unknown
	LastLSN    uint64       `json:"last_lsn"`
	DurableLSN uint64       `json:"durable_lsn"`
	CommitLSN  uint64       `json:"commit_lsn"`
	AppliedLSN uint64       `json:"applied_lsn"`
	ReadyLSN   uint64       `json:"ready_lsn,omitempty"` // leader's barrier
	Elections  int64        `json:"elections"`
	Peers      []PeerStatus `json:"peers,omitempty"` // leader only
	// MsSinceLeaderContact is -1 before any leader has been heard.
	MsSinceLeaderContact int64 `json:"ms_since_leader_contact"`
}

// Ticket tracks one proposal; Wait blocks until the batch is committed
// (majority-durable) or leadership is lost.
type Ticket struct {
	FirstLSN, LastLSN uint64
	done              chan error
}

// Wait blocks for the commit outcome. A nil return means every record in
// the batch is fsynced on a majority and will survive any single failure;
// ErrLostLeadership means the outcome is indeterminate.
func (t Ticket) Wait() error { return <-t.done }

// Node is one replica of the replicated log.
type Node struct {
	cfg   Config
	log   *wal.Log
	peers []int // replica ids other than ours

	mu        sync.Mutex
	applyCond *sync.Cond // commit/applied/truncation changes
	walCond   *sync.Cond // pendingAppends changes

	role      Role
	term      uint64
	votedFor  int
	leader    int // -1 unknown
	floor     uint64
	floorTerm uint64
	// terms and data cache the enveloped log suffix above floor, indexed
	// by lsn-floor-1; data bytes are exactly what sits in the WAL.
	terms   []uint64
	data    [][]byte
	lastLSN uint64
	// localDurable is the highest LSN known fsynced locally.
	localDurable   uint64
	pendingAppends int // proposals appended but not yet fsynced
	commitLSN      uint64
	appliedLSN     uint64
	readyLSN       uint64 // LSN of this leadership's no-op barrier
	match, next    []uint64
	lastAck        []time.Time
	votes          map[int]bool
	waiters        map[uint64][]chan error
	electionAt     time.Time
	lastContact    time.Time
	rng            *rand.Rand
	walErr         error
	persistErr     error
	closed         bool

	elections    atomic.Int64
	appendsSent  atomic.Int64
	appendsRecv  atomic.Int64
	votesRecv    atomic.Int64
	proposals    atomic.Int64
	protocolErrs atomic.Int64

	kick   []chan struct{}
	roleCh chan Status
	done   chan struct{}
	wg     sync.WaitGroup
}

// Open loads the replica's durable state (term file + WAL, including the
// term cache scanned from the enveloped records) and starts the protocol
// goroutines: every replica boots as a follower and waits out a full
// election timeout before campaigning.
func Open(cfg Config) (*Node, wal.OpenReport, error) {
	cfg.fillDefaults()
	if cfg.Replicas < 1 {
		return nil, wal.OpenReport{}, fmt.Errorf("repl: Replicas must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Replicas {
		return nil, wal.OpenReport{}, fmt.Errorf("repl: ID %d outside [0,%d)", cfg.ID, cfg.Replicas)
	}
	if cfg.Transport == nil && cfg.Replicas > 1 {
		return nil, wal.OpenReport{}, fmt.Errorf("repl: Transport required for %d replicas", cfg.Replicas)
	}
	term, votedFor, err := readTermState(cfg.FS, cfg.Dir)
	if err != nil {
		if mkErr := cfg.FS.MkdirAll(cfg.Dir); mkErr != nil {
			return nil, wal.OpenReport{}, mkErr
		}
		term, votedFor, err = readTermState(cfg.FS, cfg.Dir)
		if err != nil {
			return nil, wal.OpenReport{}, err
		}
	}
	log, rep, err := wal.Open(wal.Options{
		Dir: cfg.Dir, FS: cfg.FS, SegmentBytes: cfg.SegmentBytes, BaseLSN: cfg.BaseLSN,
	})
	if err != nil {
		return nil, rep, err
	}

	n := &Node{
		cfg:      cfg,
		log:      log,
		role:     RoleFollower,
		term:     term,
		votedFor: votedFor,
		leader:   -1,
		votes:    map[int]bool{},
		waiters:  map[uint64][]chan error{},
		rng:      rand.New(rand.NewSource(cfg.Seed*2654435761 + int64(cfg.ID))),
		roleCh:   make(chan Status, 64),
		done:     make(chan struct{}),
	}
	n.applyCond = sync.NewCond(&n.mu)
	n.walCond = sync.NewCond(&n.mu)
	for id := 0; id < cfg.Replicas; id++ {
		if id != cfg.ID {
			n.peers = append(n.peers, id)
		}
	}
	n.match = make([]uint64, len(n.peers))
	n.next = make([]uint64, len(n.peers))
	n.lastAck = make([]time.Time, len(n.peers))
	n.kick = make([]chan struct{}, len(n.peers))
	for i := range n.kick {
		n.kick[i] = make(chan struct{}, 1)
	}

	if err := n.loadLog(); err != nil {
		log.Close()
		return nil, rep, err
	}
	if cfg.AppliedLSN > n.lastLSN {
		// The snapshot outran the surviving log: a leader commits (and
		// snapshots) once a majority is durable, which may run ahead of
		// its own fsync horizon, and the torn tail died with the crash.
		// Everything surviving is inside the snapshot, so wipe the stale
		// segments and restart the log just past it — the missing suffix
		// comes back from the current leader.
		if cerr := log.Close(); cerr != nil {
			return nil, rep, cerr
		}
		dropped, werr := wal.RemoveAll(cfg.FS, cfg.Dir)
		if werr != nil {
			return nil, rep, fmt.Errorf("repl: wipe stale log: %w", werr)
		}
		rep.DroppedSegments += dropped
		log, _, err = wal.Open(wal.Options{
			Dir: cfg.Dir, FS: cfg.FS, SegmentBytes: cfg.SegmentBytes, BaseLSN: cfg.AppliedLSN + 1,
		})
		if err != nil {
			return nil, rep, err
		}
		n.log = log
		n.terms, n.data = nil, nil
		n.floor = cfg.AppliedLSN
		n.lastLSN = cfg.AppliedLSN
		rep.LastLSN = cfg.AppliedLSN
	}
	n.floorTerm = cfg.FloorTerm
	n.appliedLSN = max(cfg.AppliedLSN, n.floor)
	// Everything the snapshot covers was committed; nothing above it is
	// known committed until a leader says so.
	n.commitLSN = n.appliedLSN
	n.localDurable = log.Stats().SyncedLSN
	n.resetElectionLocked()

	n.logf("repl: replica %d/%d open: term=%d votedFor=%d log=[%d..%d] applied=%d",
		cfg.ID, cfg.Replicas, n.term, n.votedFor, n.floor+1, n.lastLSN, n.appliedLSN)

	n.wg.Add(3 + len(n.peers))
	go n.runTicker()
	go n.runApply()
	go n.runNotify()
	for i := range n.peers {
		go n.runPeer(i)
	}
	return n, rep, nil
}

// loadLog scans the WAL into the term/data caches and derives the floor.
func (n *Node) loadLog() error {
	from := uint64(1)
	first := true
	for {
		recs, err := n.log.ReadFrom(from, 4096)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			if first {
				n.floor = r.LSN - 1
				first = false
			}
			term, _, _, err := decodeEntry(r.Payload)
			if err != nil {
				return fmt.Errorf("repl: LSN %d: %w", r.LSN, err)
			}
			n.terms = append(n.terms, term)
			n.data = append(n.data, r.Payload)
		}
		from = recs[len(recs)-1].LSN + 1
	}
	if first {
		n.floor = n.log.Stats().LastLSN // empty log: BaseLSN-1
	}
	n.lastLSN = n.floor + uint64(len(n.terms))
	return nil
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

func (n *Node) majority() int { return n.cfg.Replicas/2 + 1 }

// termAt reports the term of the entry at lsn (mu held).
func (n *Node) termAt(lsn uint64) uint64 {
	switch {
	case lsn == 0:
		return 0
	case lsn == n.floor:
		return n.floorTerm
	case lsn > n.floor && lsn <= n.lastLSN:
		return n.terms[lsn-n.floor-1]
	default:
		return 0
	}
}

func (n *Node) dataAt(lsn uint64) []byte { return n.data[lsn-n.floor-1] }

func (n *Node) lastTermLocked() uint64 { return n.termAt(n.lastLSN) }

func (n *Node) resetElectionLocked() {
	t := n.cfg.ElectionTimeout
	n.electionAt = time.Now().Add(t + time.Duration(n.rng.Int63n(int64(t))))
}

func (n *Node) kickIdx(i int) {
	select {
	case n.kick[i] <- struct{}{}:
	default:
	}
}

func (n *Node) kickAll() {
	for i := range n.kick {
		n.kickIdx(i)
	}
}

// statusLocked snapshots state (mu held).
func (n *Node) statusLocked() Status {
	st := Status{
		ID: n.cfg.ID, Role: n.role, RoleName: n.role.String(),
		Term: n.term, Leader: n.leader,
		LastLSN: n.lastLSN, DurableLSN: n.localDurable,
		CommitLSN: n.commitLSN, AppliedLSN: n.appliedLSN, ReadyLSN: n.readyLSN,
		Elections:            n.elections.Load(),
		MsSinceLeaderContact: -1,
	}
	if !n.lastContact.IsZero() {
		st.MsSinceLeaderContact = time.Since(n.lastContact).Milliseconds()
	}
	if n.role == RoleLeader {
		st.MsSinceLeaderContact = 0
		for i, p := range n.peers {
			st.Peers = append(st.Peers, PeerStatus{ID: p, MatchLSN: n.match[i], NextLSN: n.next[i]})
		}
	}
	return st
}

// Status reports the replica's protocol state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.statusLocked()
}

// LeaderReady reports whether this replica is a leader whose no-op
// barrier has committed and applied — only then are its engine state and
// commit index known current, and only then should it take mutations.
func (n *Node) LeaderReady() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader && n.readyLSN > 0 && n.appliedLSN >= n.readyLSN
}

func (n *Node) notifyLocked() {
	st := n.statusLocked()
	select {
	case n.roleCh <- st:
	default: // coalesce under pressure; Status() always has the truth
	}
}

func (n *Node) failWaitersLocked(err error) {
	for lsn, chans := range n.waiters {
		for _, ch := range chans {
			ch <- err
		}
		delete(n.waiters, lsn)
	}
}

func (n *Node) completeWaitersLocked() {
	for lsn, chans := range n.waiters {
		if lsn <= n.commitLSN {
			for _, ch := range chans {
				ch <- nil
			}
			delete(n.waiters, lsn)
		}
	}
}

// stepDownLocked moves to follower, bumping (and persisting) the term if
// newTerm is higher. leader is the new term's leader if known, else -1.
func (n *Node) stepDownLocked(newTerm uint64, leader int) {
	changed := n.role != RoleFollower || newTerm > n.term || n.leader != leader
	if n.role != RoleFollower {
		n.logf("repl: replica %d: %s -> follower (term %d -> %d)", n.cfg.ID, n.role, n.term, newTerm)
	}
	if newTerm > n.term {
		n.term = newTerm
		n.votedFor = -1
		if err := writeTermState(n.cfg.FS, n.cfg.Dir, n.term, n.votedFor); err != nil {
			n.persistErr = err
		}
	}
	n.role = RoleFollower
	n.leader = leader
	n.readyLSN = 0
	n.resetElectionLocked()
	n.failWaitersLocked(ErrLostLeadership)
	if changed {
		n.notifyLocked()
	}
}

// advanceCommitLocked applies the commit rule on a leader: the majority
// durable point commits only when its entry carries the current term
// (§5.4.2 — a new leader first commits its own no-op barrier, which
// transitively commits every earlier entry).
func (n *Node) advanceCommitLocked() {
	if n.role != RoleLeader {
		return
	}
	durables := make([]uint64, 0, len(n.peers)+1)
	durables = append(durables, n.localDurable)
	durables = append(durables, n.match...)
	sort.Slice(durables, func(i, j int) bool { return durables[i] > durables[j] })
	m := durables[n.majority()-1]
	if m > n.commitLSN && n.termAt(m) == n.term {
		n.commitLSN = m
		n.applyCond.Broadcast()
		n.completeWaitersLocked()
		n.kickAll() // piggyback the new commit index promptly
	}
}

// proposeLocked appends enveloped entries for the current term (mu held,
// leader only) and registers a commit waiter for the batch's last LSN.
func (n *Node) proposeLocked(kind byte, payloads [][]byte) (Ticket, error) {
	if n.walErr != nil {
		return Ticket{}, n.walErr
	}
	batch := make([][]byte, len(payloads))
	for i, p := range payloads {
		batch[i] = encodeEntry(n.term, kind, p)
	}
	t, err := n.log.AppendBatch(batch)
	if err != nil {
		n.walErr = err
		return Ticket{}, err
	}
	term := n.term
	for _, b := range batch {
		n.terms = append(n.terms, term)
		n.data = append(n.data, b)
	}
	n.lastLSN = t.LastLSN
	n.pendingAppends++
	done := make(chan error, 1)
	n.waiters[t.LastLSN] = append(n.waiters[t.LastLSN], done)
	n.proposals.Add(1)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		err := t.Wait()
		n.mu.Lock()
		n.pendingAppends--
		n.walCond.Broadcast()
		if err != nil {
			n.walErr = err
		} else {
			d := t.LastLSN
			if d > n.lastLSN {
				d = n.lastLSN // truncated underneath us after step-down
			}
			if d > n.localDurable {
				n.localDurable = d
			}
			n.advanceCommitLocked()
		}
		n.mu.Unlock()
		n.kickAll()
	}()
	n.kickAll()
	return Ticket{FirstLSN: t.FirstLSN, LastLSN: t.LastLSN, done: done}, nil
}

// Propose replicates application payloads. Only a leader may propose;
// followers get a NotLeaderError naming the leader to redirect to. The
// returned ticket's Wait resolves once the whole batch is fsynced on a
// majority (commit), or fails indeterminate on leadership loss.
func (n *Node) Propose(payloads [][]byte) (Ticket, error) {
	if len(payloads) == 0 {
		return Ticket{}, errors.New("repl: empty proposal")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return Ticket{}, ErrClosed
	}
	if n.role != RoleLeader {
		return Ticket{}, &NotLeaderError{Leader: n.leader, Term: n.term}
	}
	return n.proposeLocked(kindApp, payloads)
}

// WaitApplied blocks until the local state machine has applied lsn.
func (n *Node) WaitApplied(lsn uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for !n.closed && n.appliedLSN < lsn && n.lastLSN >= lsn {
		n.applyCond.Wait()
	}
	if n.appliedLSN >= lsn {
		return nil
	}
	if n.closed {
		return ErrClosed
	}
	return ErrLostLeadership // entry truncated before commit
}

// truncateLocked discards the uncommitted suffix from lsn on, in both the
// WAL and the caches. It drains in-flight group commits first so the
// wal.TruncateFrom no-appends-in-flight contract holds.
func (n *Node) truncateLocked(lsn uint64) error {
	for n.pendingAppends > 0 && !n.closed {
		n.walCond.Wait()
	}
	if n.closed {
		return ErrClosed
	}
	if lsn > n.lastLSN {
		return nil
	}
	if _, err := n.log.TruncateFrom(lsn); err != nil {
		n.walErr = err
		return err
	}
	k := lsn - n.floor - 1
	n.terms = n.terms[:k]
	n.data = n.data[:k]
	n.lastLSN = lsn - 1
	if n.localDurable > n.lastLSN {
		n.localDurable = n.lastLSN
	}
	n.applyCond.Broadcast() // wake WaitApplied callers for truncated LSNs
	return nil
}

// HandleAppend is the follower half of AppendEntries: consistency check
// at (PrevLSN, PrevTerm), conflict-suffix truncation, durable append
// (the response is sent only after fsync), then commit-index adoption.
func (n *Node) HandleAppend(req AppendRequest) AppendResponse {
	n.appendsRecv.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	// Drain in-flight local group commits first: everything below assumes
	// the WAL is quiescent, and holding mu from here on keeps it so.
	for n.pendingAppends > 0 && !n.closed {
		n.walCond.Wait()
	}
	fail := func() AppendResponse {
		return AppendResponse{Term: n.term, DurableLSN: n.localDurable}
	}
	if n.closed || req.Term < n.term {
		return fail()
	}
	if req.Term == n.term && n.role == RoleLeader {
		// Two leaders in one term would mean a broken election; refuse.
		n.protocolErrs.Add(1)
		return fail()
	}
	if req.Term > n.term || n.role != RoleFollower {
		n.stepDownLocked(req.Term, req.Leader)
	}
	if n.leader != req.Leader {
		n.leader = req.Leader
		n.notifyLocked()
	}
	n.lastContact = time.Now()
	n.resetElectionLocked()

	if req.PrevLSN > n.lastLSN {
		return fail() // gap: leader must rewind
	}
	// Below our floor the snapshot vouches for consistency (snapshots
	// only ever cover committed prefixes); at or above it, terms must
	// match.
	if req.PrevLSN > n.floor && n.termAt(req.PrevLSN) != req.PrevTerm {
		return fail()
	}

	// Skip entries we already hold; truncate at the first conflict.
	idx := 0
	for idx < len(req.Entries) {
		e := req.Entries[idx]
		if e.LSN <= n.floor {
			idx++
			continue
		}
		if e.LSN > n.lastLSN {
			break
		}
		term, _, _, err := decodeEntry(e.Data)
		if err != nil {
			n.protocolErrs.Add(1)
			return fail()
		}
		if n.termAt(e.LSN) != term {
			if e.LSN <= n.commitLSN {
				// A leader contradicting our committed prefix violates
				// the protocol; never truncate below the commit index.
				n.protocolErrs.Add(1)
				return fail()
			}
			if err := n.truncateLocked(e.LSN); err != nil {
				return fail()
			}
			break
		}
		idx++
	}
	if idx < len(req.Entries) {
		first := req.Entries[idx].LSN
		if first != n.lastLSN+1 {
			n.protocolErrs.Add(1)
			return fail()
		}
		batch := make([][]byte, 0, len(req.Entries)-idx)
		entryTerms := make([]uint64, 0, len(req.Entries)-idx)
		for _, e := range req.Entries[idx:] {
			if e.LSN != first+uint64(len(batch)) {
				n.protocolErrs.Add(1)
				return fail()
			}
			term, _, _, err := decodeEntry(e.Data)
			if err != nil {
				n.protocolErrs.Add(1)
				return fail()
			}
			batch = append(batch, e.Data)
			entryTerms = append(entryTerms, term)
		}
		t, err := n.log.AppendBatch(batch)
		if err == nil {
			err = t.Wait() // durable before we acknowledge
		}
		if err != nil {
			n.walErr = err
			return fail()
		}
		for i := range batch {
			n.terms = append(n.terms, entryTerms[i])
			n.data = append(n.data, batch[i])
		}
		n.lastLSN = t.LastLSN
		if t.LastLSN > n.localDurable {
			n.localDurable = t.LastLSN
		}
	}

	if c := min(req.CommitLSN, n.lastLSN); c > n.commitLSN {
		n.commitLSN = c
		n.applyCond.Broadcast()
	}
	return AppendResponse{Term: n.term, Success: true, DurableLSN: n.localDurable}
}

// HandleVote is the voter half of elections: persist the term and vote
// before answering, and grant only to candidates whose (lastTerm,
// lastLSN) is at least ours — the election restriction that makes the
// winner a superset of every committed entry.
func (n *Node) HandleVote(req VoteRequest) VoteResponse {
	n.votesRecv.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || req.Term < n.term {
		return VoteResponse{Term: n.term}
	}
	if req.Term > n.term {
		n.stepDownLocked(req.Term, -1)
	}
	if n.persistErr != nil {
		return VoteResponse{Term: n.term}
	}
	lastTerm := n.lastTermLocked()
	upToDate := req.LastTerm > lastTerm ||
		(req.LastTerm == lastTerm && req.LastLSN >= n.lastLSN)
	if !upToDate || (n.votedFor != -1 && n.votedFor != req.Candidate) {
		return VoteResponse{Term: n.term}
	}
	n.votedFor = req.Candidate
	if err := writeTermState(n.cfg.FS, n.cfg.Dir, n.term, n.votedFor); err != nil {
		n.persistErr = err
		return VoteResponse{Term: n.term}
	}
	n.resetElectionLocked()
	return VoteResponse{Term: n.term, Granted: true}
}

// HandleTimeoutNow is the receiving half of leadership transfer: campaign
// immediately instead of waiting out the election timeout.
func (n *Node) HandleTimeoutNow() {
	n.mu.Lock()
	if n.closed || n.role == RoleLeader {
		n.mu.Unlock()
		return
	}
	n.logf("repl: replica %d: leadership transfer received, campaigning now", n.cfg.ID)
	n.mu.Unlock()
	n.startElection()
}

// TransferLeadership asks the most caught-up follower to campaign
// immediately, so a planned shutdown hands off without an election
// timeout gap. Returns the chosen successor's id.
func (n *Node) TransferLeadership(ctx context.Context) (int, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return -1, ErrClosed
	}
	if n.role != RoleLeader {
		err := &NotLeaderError{Leader: n.leader, Term: n.term}
		n.mu.Unlock()
		return -1, err
	}
	best, bestMatch := -1, uint64(0)
	for i, p := range n.peers {
		if n.match[i] >= bestMatch && n.match[i] > 0 {
			best, bestMatch = p, n.match[i]
		}
	}
	n.mu.Unlock()
	if best < 0 {
		return -1, errors.New("repl: no caught-up follower to transfer to")
	}
	n.logf("repl: replica %d: transferring leadership to %d (match %d)", n.cfg.ID, best, bestMatch)
	return best, n.cfg.Transport.TimeoutNow(ctx, best)
}

func (n *Node) startElection() {
	n.mu.Lock()
	if n.closed || n.role == RoleLeader || n.persistErr != nil {
		n.mu.Unlock()
		return
	}
	n.term++
	n.role = RoleCandidate
	n.votedFor = n.cfg.ID
	n.leader = -1
	if err := writeTermState(n.cfg.FS, n.cfg.Dir, n.term, n.votedFor); err != nil {
		n.persistErr = err
		n.mu.Unlock()
		return
	}
	n.votes = map[int]bool{n.cfg.ID: true}
	n.resetElectionLocked()
	n.elections.Add(1)
	term := n.term
	req := VoteRequest{Term: term, Candidate: n.cfg.ID, LastLSN: n.lastLSN, LastTerm: n.lastTermLocked()}
	n.logf("repl: replica %d: campaigning in term %d (last %d/%d)", n.cfg.ID, term, req.LastTerm, req.LastLSN)
	n.notifyLocked()
	n.maybeWinLocked(term)
	// Register the vote fan-out while still closed==false under mu, so
	// Close's wg.Wait cannot start before these Adds.
	n.wg.Add(len(n.peers))
	n.mu.Unlock()
	for _, p := range n.peers {
		p := p
		go func() {
			defer n.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RPCTimeout)
			defer cancel()
			resp, err := n.cfg.Transport.Vote(ctx, p, req)
			if err != nil {
				return
			}
			n.mu.Lock()
			defer n.mu.Unlock()
			if resp.Term > n.term {
				n.stepDownLocked(resp.Term, -1)
				return
			}
			if n.closed || n.role != RoleCandidate || n.term != term || !resp.Granted {
				return
			}
			n.votes[p] = true
			n.maybeWinLocked(term)
		}()
	}
}

func (n *Node) maybeWinLocked(term uint64) {
	if n.role != RoleCandidate || n.term != term || len(n.votes) < n.majority() {
		return
	}
	n.role = RoleLeader
	n.leader = n.cfg.ID
	now := time.Now()
	for i := range n.peers {
		n.next[i] = n.lastLSN + 1
		n.match[i] = 0
		n.lastAck[i] = now
	}
	// Commit barrier: a fresh leader may only commit entries of its own
	// term, so it immediately proposes a no-op; committing it commits the
	// entire inherited prefix too.
	if t, err := n.proposeLocked(kindNoop, [][]byte{nil}); err == nil {
		n.readyLSN = t.LastLSN
	}
	n.logf("repl: replica %d: leader of term %d (barrier LSN %d)", n.cfg.ID, n.term, n.readyLSN)
	n.notifyLocked()
	n.kickAll()
}

// runPeer is the per-follower replication loop: on each kick or
// heartbeat tick, ship the follower's next window of entries (or an
// empty heartbeat carrying the commit index) and fold the response into
// match/next state.
func (n *Node) runPeer(i int) {
	defer n.wg.Done()
	timer := time.NewTimer(n.cfg.HeartbeatInterval)
	defer timer.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-n.kick[i]:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
		timer.Reset(n.cfg.HeartbeatInterval)

		n.mu.Lock()
		if n.closed || n.role != RoleLeader {
			n.mu.Unlock()
			continue
		}
		term := n.term
		peer := n.peers[i]
		nextLSN := n.next[i]
		if nextLSN <= n.floor {
			// The follower needs entries our snapshot swallowed; without
			// an install-snapshot RPC it cannot catch up from us. Keep
			// probing at the floor so leadership stays visible.
			n.protocolErrs.Add(1)
			nextLSN = n.floor + 1
			n.next[i] = nextLSN
		}
		prev := nextLSN - 1
		req := AppendRequest{
			Term: term, Leader: n.cfg.ID,
			PrevLSN: prev, PrevTerm: n.termAt(prev),
			CommitLSN: n.commitLSN,
		}
		upper := prev
		if n.lastLSN >= nextLSN {
			hi := min(n.lastLSN, nextLSN+uint64(n.cfg.MaxBatch)-1)
			for l := nextLSN; l <= hi; l++ {
				req.Entries = append(req.Entries, Entry{LSN: l, Data: n.dataAt(l)})
			}
			upper = hi
		}
		n.mu.Unlock()

		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RPCTimeout)
		resp, err := n.cfg.Transport.Append(ctx, peer, req)
		cancel()
		n.appendsSent.Add(1)
		if err != nil {
			continue
		}
		n.mu.Lock()
		if resp.Term > n.term {
			n.stepDownLocked(resp.Term, -1)
			n.mu.Unlock()
			continue
		}
		if n.role == RoleLeader && n.term == term && !n.closed {
			n.lastAck[i] = time.Now()
			if resp.Success {
				// Cap match at what we actually shipped: the follower's
				// durable tail may include a divergent suffix from an
				// older leader that we have not confirmed entry-by-entry.
				m := min(resp.DurableLSN, upper)
				if m > n.match[i] {
					n.match[i] = m
				}
				if m+1 > n.next[i] {
					n.next[i] = m + 1
				}
				n.advanceCommitLocked()
				if n.next[i] <= n.lastLSN {
					n.kickIdx(i) // more to ship
				}
			} else {
				nn := n.next[i] - 1
				if resp.DurableLSN+1 < nn {
					nn = resp.DurableLSN + 1
				}
				nn = max(nn, n.floor+1)
				n.next[i] = max(nn, 1)
				n.kickIdx(i)
			}
		}
		n.mu.Unlock()
	}
}

// runTicker drives follower election timeouts and the leader's
// check-quorum: a leader that cannot reach a majority for a full
// election timeout steps down and fails its waiters rather than serving
// a minority partition forever.
func (n *Node) runTicker() {
	defer n.wg.Done()
	interval := n.cfg.HeartbeatInterval / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-tick.C:
		}
		elect := false
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		now := time.Now()
		if n.role == RoleLeader {
			if n.cfg.Replicas > 1 {
				reach := 1 // self
				for i := range n.peers {
					if now.Sub(n.lastAck[i]) <= n.cfg.ElectionTimeout {
						reach++
					}
				}
				if reach < n.majority() {
					n.logf("repl: replica %d: check-quorum failed (%d/%d reachable), stepping down", n.cfg.ID, reach, n.cfg.Replicas)
					n.stepDownLocked(n.term, -1)
				}
			}
		} else if now.After(n.electionAt) {
			elect = true
		}
		n.mu.Unlock()
		if elect {
			n.startElection()
		}
	}
}

// runApply delivers committed entries to the state machine in LSN order.
func (n *Node) runApply() {
	defer n.wg.Done()
	n.mu.Lock()
	for {
		for !n.closed && n.appliedLSN >= n.commitLSN {
			n.applyCond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		lsn := n.appliedLSN + 1
		data := n.dataAt(lsn)
		n.mu.Unlock()
		term, kind, payload, err := decodeEntry(data)
		if err == nil && kind == kindApp && n.cfg.Apply != nil {
			n.cfg.Apply(lsn, term, payload)
		}
		n.mu.Lock()
		n.appliedLSN = lsn
		n.applyCond.Broadcast()
	}
}

func (n *Node) runNotify() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case st := <-n.roleCh:
			if n.cfg.OnRole != nil {
				n.cfg.OnRole(st)
			}
		}
	}
}

// Counters reports session counters for metrics.
func (n *Node) Counters() (elections, appendsSent, appendsRecv, votesRecv, proposals, protocolErrs int64) {
	return n.elections.Load(), n.appendsSent.Load(), n.appendsRecv.Load(),
		n.votesRecv.Load(), n.proposals.Load(), n.protocolErrs.Load()
}

// WALStats exposes the underlying log's stats.
func (n *Node) WALStats() wal.Stats { return n.log.Stats() }

// ElectionTimeout reports the resolved base liveness timeout — callers
// use it as the staleness bound on leader knowledge.
func (n *Node) ElectionTimeout() time.Duration { return n.cfg.ElectionTimeout }

// Err reports a latched local failure (WAL write or term-state persist),
// nil when healthy.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.walErr != nil {
		return n.walErr
	}
	return n.persistErr
}

// Close stops the protocol goroutines and closes the log. Pending
// proposal waiters fail with ErrClosed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.failWaitersLocked(ErrClosed)
	n.applyCond.Broadcast()
	n.walCond.Broadcast()
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	return n.log.Close()
}
