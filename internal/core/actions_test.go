package core

import (
	"errors"
	"testing"

	"hrtsched/internal/plan"
)

func TestSleepUntilWakes(t *testing.T) {
	k := testKernel(t, 1, 31, nil)
	var wokeAtNs int64
	sleepTarget := int64(5_000_000)
	done := false
	k.Spawn("sleeper", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if tc.NowNs < sleepTarget {
			return SleepUntil{WallNs: sleepTarget}
		}
		if !done {
			done = true
			wokeAtNs = tc.NowNs
			return Exit{}
		}
		return Exit{}
	}))
	k.RunNs(20_000_000)
	if !done {
		t.Fatalf("sleeper never woke")
	}
	if wokeAtNs < sleepTarget {
		t.Fatalf("woke at %d, before target %d", wokeAtNs, sleepTarget)
	}
	if wokeAtNs > sleepTarget+100_000 {
		t.Fatalf("woke at %d, %.0fus late", wokeAtNs, float64(wokeAtNs-sleepTarget)/1000)
	}
}

func TestBlockAndWake(t *testing.T) {
	k := testKernel(t, 1, 32, nil)
	phase := 0
	th := k.Spawn("blocker", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		phase++
		if phase == 1 {
			return Block{}
		}
		return Exit{}
	}))
	k.RunNs(2_000_000)
	if th.State() != Blocked {
		t.Fatalf("state = %v, want blocked", th.State())
	}
	k.Wake(th)
	k.RunNs(2_000_000)
	if th.State() != Exited || phase != 2 {
		t.Fatalf("wake did not resume: state=%v phase=%d", th.State(), phase)
	}
	// Waking an exited thread is a no-op.
	k.Wake(th)
	k.RunNs(1_000_000)
	if th.State() != Exited {
		t.Fatalf("wake corrupted exited thread")
	}
}

func TestYieldRoundRobins(t *testing.T) {
	k := testKernel(t, 1, 33, nil)
	var order []int
	mk := func(id int) Program {
		return ProgramFunc(func(tc *ThreadCtx) Action {
			if len(order) > 8 {
				return Exit{}
			}
			order = append(order, id)
			return Yield{}
		})
	}
	k.Spawn("a", 0, mk(0))
	k.Spawn("b", 0, mk(1))
	k.RunNs(30_000_000)
	if len(order) < 6 {
		t.Fatalf("threads starved: %v", order)
	}
	// Yield with equal priority must alternate.
	for i := 1; i < 6; i++ {
		if order[i] == order[i-1] {
			t.Fatalf("yield did not rotate: %v", order)
		}
	}
}

func TestCallRunsInThreadContext(t *testing.T) {
	k := testKernel(t, 2, 34, nil)
	var sawCPU, sawID int
	th := k.Spawn("caller", 1, Seq(
		Call{Fn: func(tc *ThreadCtx) {
			sawCPU = tc.CPU
			sawID = tc.T.ID()
		}},
		Compute{Cycles: 1000},
	))
	k.RunNs(5_000_000)
	if sawCPU != 1 || sawID != th.ID() {
		t.Fatalf("call context wrong: cpu=%d id=%d", sawCPU, sawID)
	}
}

func TestSporadicLifecycle(t *testing.T) {
	k := testKernel(t, 1, 35, nil)
	admitted := false
	th := k.Spawn("burst", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			// 200us of work guaranteed within 5ms, then priority 77.
			return ChangeConstraints{C: SporadicConstraints(0, 200_000, 5_000_000, 77)}
		}
		if !tc.AdmitOK {
			t.Fatalf("sporadic admission failed: %v", tc.AdmitErr)
		}
		return Compute{Cycles: 20_000}
	}))
	k.RunNs(2_000_000)
	if th.Constraints().Type != Aperiodic || th.Constraints().Priority != 77 {
		t.Fatalf("sporadic did not transition to aperiodic(77): %+v", th.Constraints())
	}
	if th.Misses != 0 {
		t.Fatalf("sporadic missed its deadline")
	}
	// The guaranteed burst must have been served well before the deadline.
	burstNs := k.Clocks[0].CyclesToNanos(th.SupplyCycles)
	if burstNs < 200_000 {
		t.Fatalf("burst under-served: %d ns", burstNs)
	}
	if ls := k.Locals[0]; ls.sporadicUtil != 0 {
		t.Fatalf("sporadic reservation not released: %f", ls.sporadicUtil)
	}
}

func TestSporadicReservationEnforced(t *testing.T) {
	// Two concurrent 8% sporadic requests against the 10% reservation:
	// the second must be rejected while the first is still active. Tested
	// at the admission-API level so the two requests are exactly
	// simultaneous (an end-to-end version would race against the first
	// burst completing and legitimately releasing its reservation).
	k := testKernel(t, 1, 36, nil)
	ls := k.Locals[0]
	t1 := k.Spawn("s1", 0, spin(1000))
	t2 := k.Spawn("s2", 0, spin(1000))
	k.RunNs(1_000_000)
	cons := SporadicConstraints(0, 80_000, 1_000_000, 100)
	nowNs := k.Clocks[0].NowNanos()
	if err := ls.Admit(t1, cons, nowNs); err != nil {
		t.Fatalf("first sporadic rejected: %v", err)
	}
	if u := ls.sporadicUtil; u < 0.079 || u > 0.081 {
		t.Fatalf("sporadic utilization = %f, want 0.08", u)
	}
	err := ls.Admit(t2, cons, nowNs)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("second sporadic not rejected: %v", err)
	}
	// Rejection must not leak reservation.
	if u := ls.sporadicUtil; u < 0.079 || u > 0.081 {
		t.Fatalf("reservation leaked on rejection: %f", u)
	}
	// A smaller request that fits the remaining 2% is accepted.
	if err := ls.Admit(t2, SporadicConstraints(0, 15_000, 1_000_000, 100), nowNs); err != nil {
		t.Fatalf("fitting sporadic rejected: %v", err)
	}
}

func TestAdmitCheckDoesNotMutate(t *testing.T) {
	k := testKernel(t, 1, 37, nil)
	ls := k.Locals[0]
	th := k.Spawn("x", 0, spin(1000))
	k.RunNs(1_000_000)
	before := ls.PeriodicUtilization()
	if err := ls.AdmitCheck(th, PeriodicConstraints(0, 100_000, 50_000)); err != nil {
		t.Fatalf("feasible check failed: %v", err)
	}
	if ls.PeriodicUtilization() != before {
		t.Fatalf("AdmitCheck mutated utilization")
	}
	if err := ls.AdmitCheck(th, PeriodicConstraints(0, 100_000, 99_500)); err == nil {
		t.Fatalf("infeasible check passed")
	}
	if err := ls.AdmitCheck(th, PeriodicConstraints(0, -5, 1)); err == nil {
		t.Fatalf("malformed constraints passed")
	}
}

func TestAdmissionReplacesReservation(t *testing.T) {
	k := testKernel(t, 1, 38, nil)
	step := 0
	var th *Thread
	th = k.Spawn("resize", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		step++
		switch step {
		case 1:
			return ChangeConstraints{C: PeriodicConstraints(0, 100_000, 60_000)}
		case 2:
			if !tc.AdmitOK {
				t.Fatalf("first admission failed: %v", tc.AdmitErr)
			}
			// 60% -> 70%: checks that the old reservation is released before
			// the new one is charged.
			return ChangeConstraints{C: PeriodicConstraints(0, 100_000, 70_000)}
		case 3:
			if !tc.AdmitOK {
				t.Fatalf("re-admission failed: %v", tc.AdmitErr)
			}
			return Compute{Cycles: 10_000}
		default:
			return Compute{Cycles: 10_000}
		}
	}))
	k.RunNs(20_000_000)
	u := k.Locals[0].PeriodicUtilization()
	if u < 0.69 || u > 0.71 {
		t.Fatalf("utilization after re-admission = %f, want 0.70", u)
	}
	if th.Misses != 0 {
		t.Fatalf("misses after resize: %d", th.Misses)
	}
}

func TestExitReleasesUtilization(t *testing.T) {
	k := testKernel(t, 1, 39, nil)
	admitted := false
	k.Spawn("brief", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			return ChangeConstraints{C: PeriodicConstraints(0, 100_000, 50_000)}
		}
		return Exit{}
	}))
	k.RunNs(5_000_000)
	if u := k.Locals[0].PeriodicUtilization(); u != 0 {
		t.Fatalf("exited thread still reserves %f", u)
	}
	if k.LiveThreads() != 0 {
		t.Fatalf("live threads = %d", k.LiveThreads())
	}
}

func TestGranularityLimits(t *testing.T) {
	k := testKernel(t, 1, 40, nil)
	var got error
	done := false
	k.Spawn("tiny", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !done {
			done = true
			// Far below the platform's minimum period.
			return ChangeConstraints{C: PeriodicConstraints(0, 100, 50)}
		}
		got = tc.AdmitErr
		return Exit{}
	}))
	k.RunNs(5_000_000)
	if !errors.Is(got, ErrTooFine) {
		t.Fatalf("sub-granularity constraints accepted: %v", got)
	}
}

func TestRMPolicyStricter(t *testing.T) {
	count := func(policy AdmitPolicy) int {
		k := testKernel(t, 1, 41, func(c *Config) { c.Admit = policy })
		admitted := 0
		done := 0
		const n = 12
		for i := 0; i < n; i++ {
			local, reported := false, false
			k.Spawn("p", 0, ProgramFunc(func(tc *ThreadCtx) Action {
				if !local {
					local = true
					return ChangeConstraints{C: PeriodicConstraints(0, 1_000_000, 100_000)}
				}
				if !reported {
					reported = true
					done++
					if tc.AdmitOK {
						admitted++
					}
				}
				if tc.AdmitOK {
					return Compute{Cycles: 10_000}
				}
				return Exit{}
			}))
		}
		k.RunUntil(func() bool { return done == n }, 1<<24)
		return admitted
	}
	edf := count(AdmitEDF)
	rm := count(AdmitRM)
	if edf != 9 { // floor(0.99 / 0.10)
		t.Fatalf("EDF admitted %d, want 9", edf)
	}
	if rm >= edf {
		t.Fatalf("RM (%d) should admit fewer than EDF (%d)", rm, edf)
	}
	if rm < 4 {
		t.Fatalf("RM admitted only %d; bound should allow ~5", rm)
	}
}

func TestAdmitSimRejectsInfeasibleFineGrain(t *testing.T) {
	// 20us period at 70% slice passes the 79% utilization bound, but with
	// ~9.2us of scheduler overhead per period it cannot actually be
	// scheduled (Figure 6's infeasible region). The hyperperiod-simulation
	// admission test must reject it where the bound admits it.
	verdict := func(policy AdmitPolicy, periodNs, sliceNs int64) error {
		k := testKernel(t, 1, 42, func(c *Config) { c.Admit = policy })
		th := k.Spawn("x", 0, spin(1000))
		k.RunNs(1_000_000)
		return k.Locals[0].AdmitCheck(th, PeriodicConstraints(0, periodNs, sliceNs))
	}
	// The utilization bound admits this infeasible request...
	if err := verdict(AdmitEDF, 20_000, 14_000); err != nil {
		t.Fatalf("EDF bound unexpectedly rejected: %v", err)
	}
	// ...the simulation does not.
	if err := verdict(AdmitSim, 20_000, 14_000); err == nil {
		t.Fatalf("simulation admitted an infeasible fine-grain set")
	}
	// Both admit a clearly feasible coarse request.
	if err := verdict(AdmitSim, 1_000_000, 500_000); err != nil {
		t.Fatalf("simulation rejected a feasible set: %v", err)
	}
}

func TestAdmitSimEndToEndZeroMisses(t *testing.T) {
	// Whatever the simulation admits must actually run without misses.
	k := testKernel(t, 1, 43, func(c *Config) { c.Admit = AdmitSim })
	a := k.Spawn("a", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 20_000)))
	b := k.Spawn("b", 0, mkPeriodic(PeriodicConstraints(0, 200_000, 60_000)))
	k.RunNs(60_000_000)
	if !a.IsRT() || !b.IsRT() {
		t.Fatalf("feasible set rejected by simulation")
	}
	if a.Misses != 0 || b.Misses != 0 {
		t.Fatalf("simulation-admitted set missed: a=%d b=%d", a.Misses, b.Misses)
	}
}

func TestSimulateHyperperiodUnit(t *testing.T) {
	// Pure-function checks of the offline simulator (now internal/plan).
	ovh := int64(4_600) // ~6000 cycles at 1.3GHz
	if !plan.Simulate(plan.TaskSet{{PeriodNs: 100_000, SliceNs: 30_000}, {PeriodNs: 200_000, SliceNs: 60_000}}, ovh, 0.79).OK {
		t.Fatalf("feasible harmonic set rejected")
	}
	if plan.Simulate(plan.TaskSet{{PeriodNs: 10_000, SliceNs: 8_000}}, ovh, 0.79).OK {
		t.Fatalf("over-dense set admitted")
	}
	if !plan.Simulate(nil, ovh, 0.79).OK {
		t.Fatalf("empty set rejected")
	}
	if plan.Simulate(plan.TaskSet{{PeriodNs: 0, SliceNs: 1}}, ovh, 0.79).OK {
		t.Fatalf("malformed task admitted")
	}
	// Pathological hyperperiod: conservative rejection, not a hang.
	if plan.Simulate(plan.TaskSet{{PeriodNs: 999_983, SliceNs: 10}, {PeriodNs: 999_979, SliceNs: 10}, {PeriodNs: 999_961, SliceNs: 10}}, ovh, 0.79).OK {
		t.Fatalf("unbounded hyperperiod not rejected")
	}
}
