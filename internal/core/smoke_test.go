package core

import (
	"testing"

	"hrtsched/internal/machine"
)

// testKernel boots a small Phi-like machine for unit tests.
func testKernel(t *testing.T, ncpus int, seed uint64, mutate func(*Config)) *Kernel {
	t.Helper()
	spec := machine.PhiKNL().Scaled(ncpus)
	m := machine.New(spec, seed)
	cfg := DefaultConfig(spec)
	if mutate != nil {
		mutate(&cfg)
	}
	return Boot(m, cfg)
}

// spin returns a program that computes forever in fixed-size chunks.
func spin(chunk int64) Program {
	return ProgramFunc(func(tc *ThreadCtx) Action {
		return Compute{Cycles: chunk}
	})
}

func TestAperiodicThreadRuns(t *testing.T) {
	k := testKernel(t, 2, 1, nil)
	th := k.Spawn("worker", 1, spin(10_000))
	k.RunNs(5_000_000) // 5 ms
	if th.SupplyCycles == 0 {
		t.Fatalf("aperiodic thread never executed")
	}
	if th.State() != Running && th.State() != RunnableAper {
		t.Fatalf("unexpected state %v", th.State())
	}
}

func TestThreadExit(t *testing.T) {
	k := testKernel(t, 1, 2, nil)
	exited := false
	th := k.Spawn("once", 0, Seq(Compute{Cycles: 50_000}))
	th.OnExit = func(*Thread) { exited = true }
	k.RunNs(10_000_000)
	if !exited || th.State() != Exited {
		t.Fatalf("thread did not exit: state=%v exited=%v", th.State(), exited)
	}
	if th.SupplyCycles < 50_000 {
		t.Fatalf("thread under-executed: %d cycles", th.SupplyCycles)
	}
}

func TestPeriodicAdmissionAndZeroMisses(t *testing.T) {
	k := testKernel(t, 1, 3, nil)
	// 100 us period, 50 us slice — comfortably feasible on the Phi.
	cons := PeriodicConstraints(0, 100_000, 50_000)
	var admitted bool
	th := k.Spawn("rt", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			return ChangeConstraints{C: cons}
		}
		if !tc.AdmitOK {
			t.Fatalf("admission rejected: %v", tc.AdmitErr)
		}
		return Compute{Cycles: 20_000}
	}))
	k.RunNs(50_000_000) // 50 ms => ~500 periods
	if th.Arrivals < 400 {
		t.Fatalf("too few arrivals: %d", th.Arrivals)
	}
	if th.Misses != 0 {
		t.Fatalf("feasible periodic thread missed %d deadlines (arrivals %d)",
			th.Misses, th.Arrivals)
	}
	// The thread should have received roughly slice/period = 50% of the CPU.
	elapsed := k.NowNs()
	gotNs := k.Clocks[0].CyclesToNanos(th.SupplyCycles)
	frac := float64(gotNs) / float64(elapsed)
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("supply fraction %.3f outside [0.40,0.60]", frac)
	}
}

func TestInfeasibleConstraintsRejected(t *testing.T) {
	k := testKernel(t, 1, 4, nil)
	var verdictSeen bool
	k.Spawn("greedy", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !verdictSeen {
			verdictSeen = true
			// 99.5% utilization exceeds the 99% utilization limit.
			return ChangeConstraints{C: PeriodicConstraints(0, 100_000, 99_500)}
		}
		if tc.AdmitOK {
			t.Fatalf("infeasible constraints admitted")
		}
		return Exit{}
	}))
	k.RunNs(10_000_000)
	if !verdictSeen {
		t.Fatalf("program never ran")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, uint64) {
		k := testKernel(t, 4, 42, nil)
		var admitted [4]bool
		ths := make([]*Thread, 4)
		for i := 0; i < 4; i++ {
			i := i
			ths[i] = k.Spawn("rt", i, ProgramFunc(func(tc *ThreadCtx) Action {
				if !admitted[i] {
					admitted[i] = true
					return ChangeConstraints{C: PeriodicConstraints(0, 50_000, 20_000)}
				}
				return Compute{Cycles: 5_000}
			}))
		}
		k.RunNs(20_000_000)
		var supply, arrivals int64
		for _, th := range ths {
			supply += th.SupplyCycles
			arrivals += th.Arrivals
		}
		return supply, arrivals, k.Eng.Steps()
	}
	s1, a1, e1 := run()
	s2, a2, e2 := run()
	if s1 != s2 || a1 != a2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", s1, a1, e1, s2, a2, e2)
	}
}
