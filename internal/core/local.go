package core

import (
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
	"hrtsched/internal/stats"
	"hrtsched/internal/timesync"
)

// InvokeReason says why a local scheduler invocation happened: a timer
// interrupt, a kick IPI from another local scheduler, or one of the small
// set of actions the current thread can take (sleep, wait, exit, change
// constraints) — Section 3.3.
type InvokeReason uint8

const (
	// ReasonTimer is the APIC one-shot timer interrupt.
	ReasonTimer InvokeReason = iota
	// ReasonKick is the cross-CPU scheduling IPI.
	ReasonKick
	// ReasonThread is a direct call from the current thread.
	ReasonThread
	// ReasonBoot is the initial invocation when the scheduler starts.
	ReasonBoot
)

// SchedStats aggregates a local scheduler's observable behaviour. The
// cycle-cost summaries are the four categories of Figure 5.
type SchedStats struct {
	Invocations int64
	TimerIRQs   int64
	Kicks       int64
	ThreadCalls int64
	DeviceIRQs  int64
	Switches    int64

	IRQCycles     stats.Summary // interrupt entry/exit ("IRQ")
	OtherCycles   stats.Summary // locking, queues, accounting ("Other")
	ReschedCycles stats.Summary // the scheduling pass ("Resched")
	SwitchCycles  stats.Summary // context switch ("Switch")

	StealAttempts int64
	Steals        int64
	TasksInline   int64
	IdleEntered   int64

	// WatchdogKicks counts recoveries by the timer watchdog: passes this
	// CPU only made because the watchdog noticed its timer went silent.
	WatchdogKicks int64

	Miss MissStats
}

// MissStats breaks down miss-magnitude recording on one CPU. A negative raw
// magnitude means a miss record was produced for a deadline that had not
// actually passed — an accounting bug upstream. Such records are still
// clamped to zero for the summary, but they are counted here so they cannot
// hide.
type MissStats struct {
	Recorded        int64 // miss magnitudes recorded (after clamping)
	ClampedNegative int64 // records whose raw magnitude was negative
	WorstRawNegNs   int64 // most negative raw magnitude observed
}

// LocalScheduler is the per-CPU eager EDF engine of Figure 2. It is driven
// only by a timer interrupt, a kick from another local scheduler, or an
// action of the current thread.
type LocalScheduler struct {
	k     *Kernel
	cpu   *machine.CPU
	clock *timesync.Clock
	cfg   *Config
	rng   *sim.Rand

	pending *threadHeap // admitted RT threads waiting for their arrival
	rtq     *threadHeap // arrived RT threads, EDF order
	aperq   *threadHeap // non-RT threads, priority + round robin

	sizedTasks   []*Task // size-tagged tasks the scheduler may run inline
	unsizedTasks []*Task // tasks for the helper thread
	taskThread   *Thread

	current        *Thread
	gen            uint64
	inPass         bool
	runStartWall   sim.Time
	missingAtStart sim.Duration
	quantumEndNs   int64
	actionEv       *sim.Event // pooled action-completion event (see armAction)
	stealEv        *sim.Event // persistent steal-attempt event
	stealGen       uint64     // s.gen when stealEv was last armed
	rrCounter      uint64

	periodicUtil float64
	sporadicUtil float64

	sliceSlackCycles int64

	// Cycle-conservation ledger (see Ledger). Attribution is conservative:
	// work cut short by a new pass is left to the idle residual rather than
	// risk double counting, so idle can only be over-, never under-stated.
	acctStarted     bool
	acctStartWall   sim.Time
	acctMissing0    sim.Duration
	busyCycles      int64
	overheadCycles  int64
	irqWindowCycles int64
	inlineCycles    int64

	// lastPassNs is when the scheduler last ran, fed to the timer watchdog:
	// a tickless scheduler that loses its one-shot firing goes silent until
	// some other interrupt arrives, and with priority filtering only a
	// scheduling-class interrupt can get through.
	lastPassNs int64

	Stats SchedStats
}

// Ledger is the per-CPU cycle-conservation ledger since the scheduler's
// first invocation: every wall cycle is thread execution, scheduler
// overhead, an interrupt-handler window, an inline task, SMI missing time,
// or idle. Idle is computed as the residual, so the conservation invariant
// "compute + overhead + irq + inline + missing + idle == wall" holds by
// construction and the checkable claim is that the residual is never
// negative (nothing was counted twice).
type Ledger struct {
	WallCycles      int64
	MissingCycles   int64 // SMI freeze time already elapsed in the window
	BusyCycles      int64 // thread execution credited by accountCurrent
	OverheadCycles  int64 // completed scheduler invocations (IRQ+pass+switch)
	IRQWindowCycles int64 // device-interrupt handler windows run to completion
	InlineCycles    int64 // size-tagged tasks run in scheduler context
	IdleCycles      int64 // residual: wall - missing - everything attributed
}

// Ledger returns the CPU's conservation ledger. A freeze in progress books
// its missing time up front, so the not-yet-elapsed part is deducted to keep
// the ledger consistent mid-SMI.
func (s *LocalScheduler) Ledger() Ledger {
	if !s.acctStarted {
		return Ledger{}
	}
	eng := s.k.Eng
	wall := int64(eng.Now() - s.acctStartWall)
	miss := int64(eng.MissingTime() - s.acctMissing0)
	if fu := eng.FrozenUntil(); fu > eng.Now() {
		miss -= int64(fu - eng.Now())
	}
	if miss < 0 {
		miss = 0
	}
	l := Ledger{
		WallCycles:      wall,
		MissingCycles:   miss,
		BusyCycles:      s.busyCycles,
		OverheadCycles:  s.overheadCycles,
		IRQWindowCycles: s.irqWindowCycles,
		InlineCycles:    s.inlineCycles,
	}
	l.IdleCycles = wall - miss - l.BusyCycles - l.OverheadCycles - l.IRQWindowCycles - l.InlineCycles
	return l
}

func newLocalScheduler(k *Kernel, cpu *machine.CPU, clock *timesync.Clock, cfg *Config, rng *sim.Rand) *LocalScheduler {
	s := &LocalScheduler{
		k:       k,
		cpu:     cpu,
		clock:   clock,
		cfg:     cfg,
		rng:     rng,
		pending: newThreadHeap(cfg.MaxThreads, byArrival),
		rtq:     newThreadHeap(cfg.MaxThreads, byDeadline),
		aperq:   newThreadHeap(cfg.MaxThreads, byPriorityRR),
	}
	s.sliceSlackCycles = 2*k.M.Spec.APICTickCycles + 64
	// The steal attempt is per-pass churn with an at-most-one-pending
	// invariant (armed only from dispatch, which follows a cancelling
	// invocation, or from its own firing), so it re-arms one persistent
	// event in place. The stale-firing guard moved from a captured closure
	// variable to stealGen: an invocation bumps s.gen and cancels the
	// event, so a firing armed under an older generation is ignored
	// exactly as before.
	s.stealEv = k.Eng.NewEvent(sim.Soft, func(now sim.Time) {
		if s.stealGen != s.gen || s.current != nil {
			return
		}
		if s.trySteal() {
			s.invoke(ReasonThread, now)
			return
		}
		s.armSteal()
	})
	cpu.SetSink(s)
	return s
}

// CPU returns the hardware thread this scheduler owns.
func (s *LocalScheduler) CPU() int { return s.cpu.ID() }

// Current returns the thread now running, or nil when idle.
func (s *LocalScheduler) Current() *Thread { return s.current }

// PeriodicUtilization returns the admitted periodic utilization.
func (s *LocalScheduler) PeriodicUtilization() float64 { return s.periodicUtil }

// Queues returns the lengths of (pending, rt, aperiodic) queues.
func (s *LocalScheduler) Queues() (int, int, int) {
	return s.pending.Len(), s.rtq.Len(), s.aperq.Len()
}

// nowNs returns this CPU's wall-clock estimate, offset by extra cycles of
// not-yet-elapsed handler time (the pass observes the clock after interrupt
// entry, not at the hardware edge).
func (s *LocalScheduler) nowNs(extraCycles int64) int64 {
	return s.clock.CyclesToNanos(s.clock.NowCycles() + extraCycles)
}

// HandleInterrupt implements machine.InterruptSink.
func (s *LocalScheduler) HandleInterrupt(cpu *machine.CPU, vec machine.Vector, now sim.Time) {
	switch vec {
	case machine.VecTimer:
		s.Stats.TimerIRQs++
		s.invoke(ReasonTimer, now)
	case machine.VecKick:
		s.Stats.Kicks++
		s.invoke(ReasonKick, now)
	default:
		s.deviceIRQ(vec, now)
	}
}

// invoke is one local scheduler invocation: mask interrupts, account the
// interrupted thread, pump arrivals, update state, select the next thread
// (eager EDF), and schedule the dispatch after the invocation's cost.
func (s *LocalScheduler) invoke(reason InvokeReason, now sim.Time) {
	if debugInvoke != nil {
		debugInvoke(s, reason, now)
	}
	s.gen++
	s.inPass = true
	s.cpu.SetPriority(0xF)
	s.cancelAction()
	s.cancelSteal()
	s.Stats.Invocations++
	if !s.acctStarted {
		s.acctStarted = true
		s.acctStartWall = now
		s.acctMissing0 = s.k.Eng.MissingTime()
	}

	spec := &s.k.M.Spec
	var irq int64
	switch reason {
	case ReasonTimer, ReasonKick:
		irq = s.k.M.OverheadJitter(s.rng, spec.IRQEntryCycles)
	case ReasonThread:
		s.Stats.ThreadCalls++
	}
	other := s.k.M.OverheadJitter(s.rng, spec.SchedOtherCycles)
	resched := s.k.M.OverheadJitter(s.rng, spec.SchedPassCycles)

	if s.current != nil && s.current.state == Running {
		s.accountCurrent(now)
	}
	entryCurrent := s.current

	// The pass observes the wall clock after entry costs have elapsed.
	decisionNs := s.nowNs(irq + other)
	s.lastPassNs = decisionNs

	s.pump(decisionNs)
	s.updateCurrent(decisionNs)
	if s.cfg.Degrade.armed() {
		s.applyDegrade(decisionNs)
	}

	// Inline execution of size-tagged tasks: they run in scheduler context
	// when no real-time thread needs the CPU and they fit before the next
	// arrival (Section 3.1).
	inline := s.drainSizedTasks(decisionNs)

	next := s.selectNext(decisionNs)

	var swc int64
	if next != s.current {
		swc = s.k.M.OverheadJitter(s.rng, spec.ContextSwitchCycles)
		s.switchTo(next, decisionNs)
	}
	if entryCurrent != nil && entryCurrent != s.current && s.k.Hooks.SwitchOut != nil {
		s.k.Hooks.SwitchOut(s.cpu.ID(), entryCurrent, decisionNs)
	}

	if reason == ReasonTimer || reason == ReasonKick {
		s.Stats.IRQCycles.Add(float64(irq))
	}
	s.Stats.OtherCycles.Add(float64(other))
	s.Stats.ReschedCycles.Add(float64(resched))
	if swc > 0 {
		s.Stats.SwitchCycles.Add(float64(swc))
	}

	total := irq + other + resched + swc + inline
	if total < 1 {
		total = 1
	}
	if s.k.Hooks.Pass != nil {
		s.k.Hooks.Pass(s.cpu.ID(), s, decisionNs)
	}

	gen := s.gen
	s.k.Eng.After(sim.Duration(total), sim.Soft, func(dn sim.Time) {
		if gen == s.gen {
			// The invocation ran to completion: attribute its cost. A pass
			// superseded by a newer one leaves its cost to the idle residual.
			s.overheadCycles += irq + other + resched + swc
			s.inlineCycles += inline
			s.dispatch(dn)
		}
	})
	s.scopeInvoke(now, irq, other+resched+inline, swc)
}

// accountCurrent credits the running thread with the cycles it actually
// executed since it was dispatched, excluding SMI missing time.
func (s *LocalScheduler) accountCurrent(now sim.Time) {
	t := s.current
	elapsed := int64(now-s.runStartWall) - int64(s.k.Eng.MissingTime()-s.missingAtStart)
	if elapsed < 0 {
		elapsed = 0
	}
	s.runStartWall = now
	s.missingAtStart = s.k.Eng.MissingTime()
	if elapsed == 0 {
		return
	}
	s.busyCycles += elapsed
	t.SupplyCycles += elapsed
	if c, ok := t.cur.(Compute); ok {
		_ = c
		t.curRemCycles -= elapsed
		if t.curRemCycles < 0 {
			t.curRemCycles = 0
		}
	}
	if t.cons.Type == Periodic || t.cons.Type == Sporadic {
		t.supply(elapsed, s.nowNs(0), s.recordMissTime(t))
	}
}

func (s *LocalScheduler) recordMissTime(t *Thread) func(int64) {
	return func(missNs int64) {
		if missNs < 0 {
			// A negative magnitude means the record concerns a deadline that
			// has not passed — an accounting bug. Keep the historical clamp
			// for the summary, but count the event so it cannot hide.
			s.Stats.Miss.ClampedNegative++
			if missNs < s.Stats.Miss.WorstRawNegNs {
				s.Stats.Miss.WorstRawNegNs = missNs
			}
			missNs = 0
		}
		s.Stats.Miss.Recorded++
		t.MissTimeNs.Add(float64(missNs))
		if s.k.Hooks.Miss != nil {
			s.k.Hooks.Miss(s.cpu.ID(), t, s.nowNs(0), missNs)
		}
	}
}

// pump moves every pending thread whose arrival time has passed into the
// real-time run queue, and rolls forward queued threads whose deadlines
// passed unserved (recording their misses).
func (s *LocalScheduler) pump(nowNs int64) {
	for {
		t := s.pending.Peek()
		if t == nil || t.arrivalNs > nowNs {
			break
		}
		s.pending.Pop()
		t.Arrivals++
		if s.k.Hooks.Arrival != nil {
			s.k.Hooks.Arrival(s.cpu.ID(), t, nowNs)
		}
		if t.deadlineNs <= nowNs {
			t.advancePeriod(nowNs, s.clock.NanosToCycles, s.recordMissTime(t))
		}
		t.state = RunnableRT
		s.mustPush(s.rtq, t)
	}
	// Queued RT threads whose deadline passed: misses, roll forward.
	for {
		t := s.rtq.Peek()
		if t == nil || t.deadlineNs > nowNs {
			break
		}
		if t.cons.Type == Periodic {
			t.advancePeriod(nowNs, s.clock.NanosToCycles, s.recordMissTime(t))
			s.rtq.Fix(t)
		} else {
			// Sporadic past deadline: it stays at the head (earliest
			// deadline) until its burst completes; the miss is recorded at
			// completion via the debt mechanism.
			if t.debtCycles == 0 && t.sliceRemCycles > 0 {
				t.Misses++
				t.debtCycles = t.sliceRemCycles
				t.sliceRemCycles = 0
				t.missDeadlineNs = t.deadlineNs
			}
			break
		}
	}
}

// updateCurrent re-evaluates the state of the interrupted thread: deadline
// rollover, slice exhaustion, quantum expiry, or departure (blocked,
// sleeping, exited).
func (s *LocalScheduler) updateCurrent(nowNs int64) {
	t := s.current
	if t == nil {
		return
	}
	if t.state != Running {
		// The thread blocked, slept or exited during its last action.
		s.current = nil
		return
	}
	switch t.cons.Type {
	case Periodic:
		if t.deadlineNs <= nowNs {
			t.advancePeriod(nowNs, s.clock.NanosToCycles, s.recordMissTime(t))
		}
		if t.debtCycles == 0 && t.sliceRemCycles <= s.sliceSlackCycles {
			// Slice complete (within timer slack): wait for next arrival.
			t.supply(t.sliceRemCycles, nowNs, s.recordMissTime(t))
			t.missStreak = 0
			t.arrivalNs = t.deadlineNs
			t.deadlineNs += t.cons.PeriodNs
			t.sliceRemCycles = s.clock.NanosToCycles(t.cons.SliceNs)
			t.periodIndex++
			t.state = PendingArrival
			s.mustPush(s.pending, t)
			s.current = nil
		}
	case Sporadic:
		if t.debtCycles == 0 && t.sliceRemCycles <= s.sliceSlackCycles {
			// Burst complete: the thread lives on as an aperiodic thread
			// with its designated priority.
			s.sporadicUtil -= t.chargedUtil()
			if s.sporadicUtil < 0 {
				s.sporadicUtil = 0
			}
			t.cons = AperiodicConstraints(t.cons.Priority)
			t.sliceRemCycles = 0
			s.quantumEndNs = nowNs + s.cfg.AperiodicQuantumNs
		}
	case Aperiodic:
		if nowNs >= s.quantumEndNs {
			s.rrCounter++
			t.rrSeq = s.rrCounter
			// Recharge the quantum now: if no better thread exists the
			// current one continues, and a stale (past) quantum end would
			// otherwise re-arm the timer for an immediate re-invocation.
			s.quantumEndNs = nowNs + s.cfg.AperiodicQuantumNs
		}
	}
}

// selectNext picks the most important runnable thread: the earliest
// deadline real-time thread if any (eager EDF), else the best aperiodic
// thread, else nothing (idle). In lazy mode a real-time thread whose
// latest feasible start is still in the future is deliberately not chosen.
func (s *LocalScheduler) selectNext(nowNs int64) *Thread {
	cur := s.current

	// Candidate RT thread: head of the queue vs the current thread.
	var rt *Thread
	if cur != nil && cur.state == Running && cur.isRTNow() {
		rt = cur
	}
	if h := s.rtq.Peek(); h != nil {
		if rt == nil || byDeadline(h, rt) {
			rt = h
		}
	}
	if rt != nil && s.cfg.Mode == LazyEDF && rt != cur {
		needNs := s.clock.CyclesToNanos(rt.sliceRemCycles + rt.debtCycles)
		latest := rt.deadlineNs - needNs - s.lazyGuardNs()
		if nowNs < latest {
			rt = nil // defer; timer target will include latest start
		}
	}
	if rt != nil {
		return rt
	}

	// Aperiodic: current keeps the CPU until quantum expiry unless a more
	// important thread waits.
	var ap *Thread
	if cur != nil && cur.state == Running && !cur.isRTNow() {
		ap = cur
	}
	if h := s.aperq.Peek(); h != nil {
		if ap == nil || byPriorityRR(h, ap) {
			ap = h
		}
	}
	return ap
}

// isRTNow reports whether the thread presently holds real-time standing.
func (t *Thread) isRTNow() bool {
	switch t.cons.Type {
	case Periodic:
		return true
	case Sporadic:
		return t.sliceRemCycles > 0 || t.debtCycles > 0
	default:
		return false
	}
}

// chargedUtil returns the utilization this thread reserves.
func (t *Thread) chargedUtil() float64 {
	return t.cons.Utilization()
}

// switchTo makes next the current thread, requeueing the previous one.
func (s *LocalScheduler) switchTo(next *Thread, nowNs int64) {
	prev := s.current
	if prev != nil && prev != next && prev.state == Running {
		if prev.isRTNow() {
			prev.state = RunnableRT
			s.mustPush(s.rtq, prev)
		} else {
			prev.state = RunnableAper
			s.mustPush(s.aperq, prev)
		}
		prev.Preemptions++
	}
	if next != nil && next != prev {
		// Remove from whichever queue holds it.
		if s.rtq.Contains(next) {
			s.rtq.Remove(next)
		} else if s.aperq.Contains(next) {
			s.aperq.Remove(next)
		}
		next.Switches++
		if !next.isRTNow() {
			s.quantumEndNs = nowNs + s.cfg.AperiodicQuantumNs
		}
	}
	s.current = next
	s.Stats.Switches++
	if next == nil {
		s.Stats.IdleEntered++
	}
}

// dispatch completes an invocation: program the one-shot timer for the
// next scheduling event, start the chosen thread's action, and lower the
// processor priority (delivering any held-pending interrupts).
func (s *LocalScheduler) dispatch(now sim.Time) {
	s.inPass = false
	gen := s.gen
	t := s.current

	nowNs := s.nowNs(0)
	target := s.nextTimerTargetNs(nowNs)
	if target < int64(1<<62) {
		delay := target - nowNs
		if delay < 0 {
			delay = 0
		}
		if debugDispatch != nil {
			debugDispatch(s, nowNs, delay)
		}
		s.cpu.SetOneShotNanos(delay)
	} else {
		s.cpu.CancelTimer()
	}

	if t == nil {
		s.scopeThread(false)
		s.armSteal()
		s.cpu.SetPriority(0)
		return
	}

	t.state = Running
	s.runStartWall = now
	s.missingAtStart = s.k.Eng.MissingTime()
	if s.k.OnSwitch != nil {
		s.k.OnSwitch(s.cpu.ID(), t, nowNs, now)
	}
	if s.k.Hooks.SwitchIn != nil {
		s.k.Hooks.SwitchIn(s.cpu.ID(), t, nowNs)
	}
	s.scopeThread(s.k.scopeHook != nil && t == s.k.scopeHook.Thread)

	s.startAction(t, now)
	if gen != s.gen {
		return // the action re-entered the scheduler
	}
	if t.isRTNow() && s.cfg.PriorityFiltering {
		s.cpu.SetPriority(machine.SchedPriority)
	} else {
		s.cpu.SetPriority(0)
	}
}

// nextTimerTargetNs computes the wall-clock time of the next scheduling
// event this CPU must wake for.
func (s *LocalScheduler) nextTimerTargetNs(nowNs int64) int64 {
	target := int64(1 << 62)
	if p := s.pending.Peek(); p != nil && p.arrivalNs < target {
		target = p.arrivalNs
	}
	if t := s.current; t != nil {
		switch {
		case t.isRTNow():
			need := s.clock.CyclesToNanos(t.sliceRemCycles + t.debtCycles)
			if end := nowNs + need; end < target {
				target = end
			}
			if t.deadlineNs < target {
				target = t.deadlineNs
			}
		default:
			if s.quantumEndNs < target {
				target = s.quantumEndNs
			}
		}
		// An RT thread waiting in the queue still bounds our wakeup: its
		// deadline must be honoured even while someone else runs.
		if h := s.rtq.Peek(); h != nil {
			if s.cfg.Mode == LazyEDF {
				needNs := s.clock.CyclesToNanos(h.sliceRemCycles + h.debtCycles)
				if latest := h.deadlineNs - needNs - s.lazyGuardNs(); latest < target {
					target = latest
				}
			} else if h.deadlineNs < target {
				target = h.deadlineNs
			}
		}
	} else if h := s.rtq.Peek(); h != nil {
		// Idle with runnable RT work should not happen (eager), but a lazy
		// scheduler can be here deliberately.
		if s.cfg.Mode == LazyEDF {
			needNs := s.clock.CyclesToNanos(h.sliceRemCycles + h.debtCycles)
			if latest := h.deadlineNs - needNs - s.lazyGuardNs(); latest < target {
				target = latest
			}
		} else if h.deadlineNs < target {
			target = h.deadlineNs
		}
	}
	return target
}

var debugInvoke func(*LocalScheduler, InvokeReason, sim.Time)

var debugDispatch func(*LocalScheduler, int64, int64)

// lazyGuardNs is the margin a lazy (latest-possible-start) scheduler must
// leave for its own invocation costs. It deliberately cannot cover SMI
// missing time, which is exactly why the paper rejects lazy EDF (3.6).
func (s *LocalScheduler) lazyGuardNs() int64 {
	return s.clock.CyclesToNanos(3 * s.k.M.Spec.TotalSchedCycles())
}

func (s *LocalScheduler) cancelAction() {
	if s.actionEv != nil {
		s.actionEv.Cancel()
		s.actionEv = nil
	}
}

// armAction schedules completion of t's in-flight action d cycles from
// now. Unlike the timer/steal/IRQ churn sites it deliberately schedules a
// fresh pooled event per arm rather than re-arming one persistent event:
// overlapping interrupt-handler windows (kernel.interruptHandlerWindow)
// can arm a second completion while an earlier one is still pending, and
// both firings are part of the engine-pinned deterministic behaviour. The
// event object itself still comes from the engine's free list.
func (s *LocalScheduler) armAction(t *Thread, d sim.Duration) {
	gen := s.gen
	s.actionEv = s.k.Eng.After(d, sim.Soft, func(dn sim.Time) {
		if gen == s.gen {
			s.actionEv = nil
			s.onActionComplete(t, dn)
		}
	})
}

func (s *LocalScheduler) mustPush(h *threadHeap, t *Thread) {
	if err := h.Push(t); err != nil {
		panic(err)
	}
}
