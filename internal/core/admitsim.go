package core

// Hyperperiod-simulation admission control — the "more sophisticated
// admission control" prototype Section 3.2 describes: because admission
// runs in the context of the requesting thread, it can afford to simulate
// the local scheduler for a hyperperiod. The decision procedure itself —
// EDF over one hyperperiod, charging the scheduler's per-invocation
// overhead (two interrupts per period, Section 5.3), with conservative
// rejection on hyperperiod overflow or step-bound exhaustion — lives in
// internal/plan as a pure, exported engine; this file only collects the
// scheduler's currently admitted periodic set and asks plan for a verdict.

import "hrtsched/internal/plan"

// periodicSet collects the periodic tasks currently admitted on this
// scheduler, excluding (optionally) one thread being re-admitted.
func (s *LocalScheduler) periodicSet(exclude *Thread) plan.TaskSet {
	var out plan.TaskSet
	add := func(t *Thread) {
		if t != exclude && t.cons.Type == Periodic {
			out = append(out, plan.Task{PeriodNs: t.cons.PeriodNs, SliceNs: t.cons.SliceNs})
		}
	}
	s.pending.All(add)
	s.rtq.All(add)
	if s.current != nil {
		add(s.current)
	}
	return out
}

// admitBySimulation checks a periodic request by simulating the resulting
// task set over a hyperperiod, including scheduler overhead.
func (s *LocalScheduler) admitBySimulation(t *Thread, c Constraints) bool {
	set := append(s.periodicSet(t), plan.Task{PeriodNs: c.PeriodNs, SliceNs: c.SliceNs})
	overheadNs := s.clock.CyclesToNanos(s.k.M.Spec.TotalSchedCycles())
	// The prototype is a "periodic thread-only model" (Section 3.2): it
	// charges scheduler overhead explicitly and reserves only the
	// utilization limit's headroom, not the sporadic/aperiodic fractions.
	return plan.Simulate(set, overheadNs, s.cfg.UtilizationLimit).OK
}
