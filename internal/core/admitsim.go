package core

// Hyperperiod-simulation admission control — the "more sophisticated
// admission control" prototype Section 3.2 describes: because admission
// runs in the context of the requesting thread, it can afford to simulate
// the local scheduler for a hyperperiod. Unlike the closed-form utilization
// bound, the simulation charges the scheduler's own per-invocation overhead
// (two interrupts per period, Section 5.3), so it correctly rejects
// fine-grain task sets that the bound would admit but that the platform
// cannot actually schedule — the infeasible region of Figures 6 and 7.

// simTask is one periodic task in the offline simulation.
type simTask struct {
	periodNs, sliceNs int64
}

// maxSimSteps bounds the offline simulation so admission cost stays
// bounded no matter how pathological the hyperperiod is.
const maxSimSteps = 1 << 16

// simulateHyperperiod runs EDF over one hyperperiod of the task set,
// charging overheadNs of scheduler time at each arrival and each slice
// completion. It reports whether every job met its deadline. A task set
// whose hyperperiod is too long to simulate within the step bound is
// rejected conservatively.
func simulateHyperperiod(tasks []simTask, overheadNs int64, utilLimit float64) bool {
	if len(tasks) == 0 {
		return true
	}
	hyper := int64(1)
	for _, t := range tasks {
		if t.periodNs <= 0 || t.sliceNs <= 0 {
			return false
		}
		hyper = lcm64(hyper, t.periodNs)
		if hyper <= 0 || hyper > int64(1)<<40 {
			return false // hyperperiod overflow: reject conservatively
		}
	}

	type job struct {
		task     int
		deadline int64
		rem      int64
	}
	var ready []job
	now := int64(0)
	steps := 0

	// The utilization limit reserves a fraction of every interval for
	// non-periodic work, so serving D ns of demand takes D/limit ns of wall
	// time; fold that into the job's wall-time requirement up front (ceil).
	inflate := func(ns int64) int64 {
		if utilLimit <= 0 || utilLimit >= 1 {
			return ns
		}
		v := int64(float64(ns)/utilLimit) + 1
		return v
	}
	release := func(at int64) {
		for i, t := range tasks {
			if at%t.periodNs == 0 {
				// Each arrival costs one scheduler invocation and a second
				// fires at slice completion; charge both to the job.
				ready = append(ready, job{task: i, deadline: at + t.periodNs,
					rem: inflate(t.sliceNs + 2*overheadNs)})
			}
		}
	}
	nextRelease := func(after int64) int64 {
		next := int64(-1)
		for _, t := range tasks {
			r := (after/t.periodNs + 1) * t.periodNs
			if next == -1 || r < next {
				next = r
			}
		}
		return next
	}
	release(0)
	for now < hyper {
		steps++
		if steps > maxSimSteps {
			return false
		}
		if len(ready) == 0 {
			now = nextRelease(now)
			if now < hyper {
				release(now)
			}
			continue
		}
		// EDF: find the earliest deadline.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i].deadline < ready[best].deadline {
				best = i
			}
		}
		j := &ready[best]
		runUntil := now + j.rem
		if nr := nextRelease(now); nr < runUntil {
			runUntil = nr
		}
		if runUntil > j.deadline {
			return false // this job cannot finish in time
		}
		j.rem -= runUntil - now
		if j.rem <= 0 {
			ready[best] = ready[len(ready)-1]
			ready = ready[:len(ready)-1]
		}
		now = runUntil
		if now < hyper {
			release(now)
		}
	}
	// Jobs still outstanding at the hyperperiod boundary have deadlines at
	// or before it only if they missed.
	for _, j := range ready {
		if j.rem > 0 && j.deadline <= hyper {
			return false
		}
	}
	return true
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 { return a / gcd64(a, b) * b }

// periodicSet collects the periodic tasks currently admitted on this
// scheduler, excluding (optionally) one thread being re-admitted.
func (s *LocalScheduler) periodicSet(exclude *Thread) []simTask {
	var out []simTask
	add := func(t *Thread) {
		if t != exclude && t.cons.Type == Periodic {
			out = append(out, simTask{t.cons.PeriodNs, t.cons.SliceNs})
		}
	}
	s.pending.All(add)
	s.rtq.All(add)
	if s.current != nil {
		add(s.current)
	}
	return out
}

// admitBySimulation checks a periodic request by simulating the resulting
// task set over a hyperperiod, including scheduler overhead.
func (s *LocalScheduler) admitBySimulation(t *Thread, c Constraints) bool {
	set := append(s.periodicSet(t), simTask{c.PeriodNs, c.SliceNs})
	overheadNs := s.clock.CyclesToNanos(s.k.M.Spec.TotalSchedCycles())
	// The prototype is a "periodic thread-only model" (Section 3.2): it
	// charges scheduler overhead explicitly and reserves only the
	// utilization limit's headroom, not the sporadic/aperiodic fractions.
	return simulateHyperperiod(set, overheadNs, s.cfg.UtilizationLimit)
}
