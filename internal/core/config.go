package core

import (
	"fmt"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// EDFMode selects the context-switch eagerness of the local scheduler.
type EDFMode uint8

const (
	// EagerEDF never delays switching to a runnable real-time thread.
	// This is the paper's choice: starting early means ending early even
	// when SMI "missing time" intrudes (Section 3.6).
	EagerEDF EDFMode = iota
	// LazyEDF delays the switch to a newly arrived thread until the last
	// moment at which its deadline can still be met — the classic
	// non-work-conserving behaviour the paper argues against. Provided for
	// the ablation benchmark.
	LazyEDF
)

// AdmitPolicy selects the classic single-CPU admission test (Section 3.2).
type AdmitPolicy uint8

const (
	// AdmitEDF uses the EDF utilization bound: total RT utilization <= cap.
	AdmitEDF AdmitPolicy = iota
	// AdmitRM uses the rate-monotonic Liu & Layland bound n(2^(1/n)-1).
	AdmitRM
	// AdmitNone disables admission control; any structurally valid
	// constraint is accepted. Figures 6-9 use this to study infeasible
	// constraints.
	AdmitNone
	// AdmitSim admits periodic threads by simulating the local scheduler
	// over one hyperperiod, charging scheduler overhead — the prototype
	// Section 3.2 describes. It rejects fine-grain sets that pass the
	// utilization bound but are infeasible on the platform.
	AdmitSim
)

// StealPolicy selects the work-stealing victim choice (Section 3.4).
type StealPolicy uint8

const (
	// StealPowerOfTwo picks two random victims and steals from the one
	// with more stealable work (Mitzenmacher), avoiding global
	// coordination.
	StealPowerOfTwo StealPolicy = iota
	// StealLinear scans CPUs in order from the thief. For the ablation.
	StealLinear
	// StealOff disables work stealing.
	StealOff
)

// Config is the boot-time configuration of every local scheduler. The
// defaults mirror the paper's evaluation configuration: "99% utilization
// limit, 10% sporadic reservation, 10% aperiodic reservation", round-robin
// aperiodic scheduling on a 10 Hz timer.
type Config struct {
	// UtilizationLimit leaves headroom for the scheduler's own invocations
	// and, if need be, interrupts and SMIs. Fraction of 1.0.
	UtilizationLimit float64
	// SporadicReservation is the utilization fraction reserved for
	// spontaneously arriving sporadic threads.
	SporadicReservation float64
	// AperiodicReservation is the fraction intended for non-real-time
	// threads and admission-control processing. Like the sporadic
	// reservation it guides capacity planning; periodic admission checks
	// against the utilization limit itself (the scheduler is
	// work-conserving, so unreserved time flows to whoever is runnable).
	AperiodicReservation float64

	// AperiodicQuantumNs is the round-robin quantum for aperiodic threads
	// (the paper's 10 Hz timer => 100 ms).
	AperiodicQuantumNs int64

	// Mode selects eager or lazy EDF.
	Mode EDFMode
	// Admit selects the admission test.
	Admit AdmitPolicy
	// Steal selects the work-stealing policy of the idle thread.
	Steal StealPolicy
	// StealCheckNs is how often an idle CPU attempts a steal.
	StealCheckNs int64

	// Limits bounds admissible constraint granularity. Zero values are
	// filled from the platform's scheduler overhead at boot.
	Limits Limits

	// MaxThreads is the compile-time bound on threads per local scheduler.
	MaxThreads int

	// InterruptThread, when true, runs device interrupt work in a
	// dedicated aperiodic thread on the interrupt-laden CPU rather than
	// entirely in handler context (the second steering mechanism of
	// Section 3.5).
	InterruptThread bool

	// PriorityFiltering programs the APIC processor priority while a hard
	// real-time thread runs so that only scheduling-related interrupts
	// reach it (the first steering mechanism of Section 3.5). On by
	// default; disable only for the ablation study.
	PriorityFiltering bool

	// Degrade configures the graceful-degradation layer: what to do with
	// periodic threads that keep missing deadlines after faults push the
	// admitted set over the edge. Zero value: degradation off.
	Degrade DegradeConfig

	// WatchdogNs, when positive, runs a cross-CPU timer watchdog: a CPU
	// whose scheduler has not run for this long while it still has work is
	// sent a kick IPI. A tickless scheduler that loses a one-shot firing
	// otherwise goes silent forever — the running thread keeps the CPU and
	// priority filtering holds every device interrupt pending. Kicks are
	// scheduling-class, so they get through. Zero: no watchdog.
	WatchdogNs int64
}

// DegradePolicy selects the graceful-degradation response applied to a
// periodic thread whose miss streak crosses the configured threshold.
type DegradePolicy uint8

const (
	// DegradeOff disables the degradation layer.
	DegradeOff DegradePolicy = iota
	// DegradeDemote downgrades the thread to the aperiodic class. It keeps
	// running best-effort; the utilization it reserved is released so the
	// surviving real-time threads can meet their deadlines again.
	DegradeDemote
	// DegradeShrink shrinks the thread's slice proportionally, keeping it
	// periodic with a lighter reservation. Once the slice would fall below
	// the floor the thread is demoted instead.
	DegradeShrink
	// DegradeEvict parks the thread (Blocked) and notifies via the Degrade
	// hook; it runs again only if the re-admission supervisor restores it
	// or someone wakes it explicitly.
	DegradeEvict
)

// String names the policy.
func (p DegradePolicy) String() string {
	switch p {
	case DegradeOff:
		return "off"
	case DegradeDemote:
		return "demote"
	case DegradeShrink:
		return "shrink"
	case DegradeEvict:
		return "evict"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", uint8(p))
	}
}

// DegradeConfig tunes the degradation layer.
type DegradeConfig struct {
	// Policy selects the shed response; DegradeOff disables the layer.
	Policy DegradePolicy
	// MissStreak is the consecutive-miss threshold that triggers a shed.
	// Values below 1 are treated as the default of 3.
	MissStreak int
	// ShrinkPct is the percentage of the current slice kept by each
	// DegradeShrink step; outside (0,100) it defaults to 50.
	ShrinkPct int64
	// MinSliceNs is the floor below which DegradeShrink demotes instead.
	// Zero uses the platform's Limits.MinSliceNs.
	MinSliceNs int64
	// Readmit enables the re-admission supervisor: shed threads are retried
	// with their original constraints under exponential backoff.
	Readmit bool
	// ReadmitAfterNs is the base backoff before the first re-admission
	// attempt; attempt k waits ReadmitAfterNs << k. Zero defaults to four
	// periods of the shed thread's original constraints.
	ReadmitAfterNs int64
	// ReadmitMaxAttempts bounds the supervisor's retries per shed thread.
	// Values below 1 default to 8.
	ReadmitMaxAttempts int
}

// armed reports whether the degradation layer participates in scheduler
// passes.
func (d DegradeConfig) armed() bool { return d.Policy != DegradeOff }

// streak returns the effective miss-streak threshold.
func (d DegradeConfig) streak() int {
	if d.MissStreak < 1 {
		return 3
	}
	return d.MissStreak
}

// shrinkPct returns the effective per-step slice retention percentage.
func (d DegradeConfig) shrinkPct() int64 {
	if d.ShrinkPct <= 0 || d.ShrinkPct >= 100 {
		return 50
	}
	return d.ShrinkPct
}

// maxAttempts returns the effective re-admission retry bound.
func (d DegradeConfig) maxAttempts() int {
	if d.ReadmitMaxAttempts < 1 {
		return 8
	}
	return d.ReadmitMaxAttempts
}

// DefaultConfig returns the paper's default configuration for the given
// platform spec.
func DefaultConfig(spec machine.Spec) Config {
	minPeriod := 2 * spec.CyclesToNanos(sim.Time(2*spec.TotalSchedCycles()))
	minSlice := spec.CyclesToNanos(sim.Time(spec.ContextSwitchCycles))
	if minSlice < 1 {
		minSlice = 1
	}
	return Config{
		UtilizationLimit:     0.99,
		SporadicReservation:  0.10,
		AperiodicReservation: 0.10,
		AperiodicQuantumNs:   100_000_000, // 10 Hz
		Mode:                 EagerEDF,
		Admit:                AdmitEDF,
		Steal:                StealPowerOfTwo,
		StealCheckNs:         50_000,
		Limits:               Limits{MinPeriodNs: minPeriod, MinSliceNs: minSlice},
		MaxThreads:           1024,
		PriorityFiltering:    true,
	}
}

// rtCap returns the utilization left for periodic threads if both
// reservations were fully consumed — the conservative planning figure.
func (c *Config) rtCap() float64 {
	return c.UtilizationLimit - c.SporadicReservation - c.AperiodicReservation
}

var _ = (&Config{}).rtCap // retained for capacity-planning consumers
