package core

import (
	"testing"
)

func TestSizedTasksRunInline(t *testing.T) {
	k := testKernel(t, 1, 61, nil)
	ran := 0
	for i := 0; i < 5; i++ {
		k.PostTask(0, &Task{Name: "sized", SizeCycles: 30_000, ActualCycles: 25_000,
			Fn: func(*Kernel, int) { ran++ }})
	}
	k.RunNs(10_000_000)
	if ran != 5 {
		t.Fatalf("sized tasks ran: %d/5", ran)
	}
	if k.Locals[0].Stats.TasksInline != 5 {
		t.Fatalf("inline counter = %d", k.Locals[0].Stats.TasksInline)
	}
	// No helper thread needed for sized tasks.
	for _, th := range k.Threads() {
		if th.Name() == "task-exec" {
			t.Fatalf("sized tasks spawned a helper thread")
		}
	}
}

func TestUnsizedTasksUseHelperThread(t *testing.T) {
	k := testKernel(t, 1, 62, nil)
	ran := 0
	tasks := make([]*Task, 4)
	for i := range tasks {
		tasks[i] = &Task{Name: "unsized", ActualCycles: 40_000,
			Fn: func(*Kernel, int) { ran++ }}
		k.PostTask(0, tasks[i])
	}
	k.RunNs(10_000_000)
	if ran != 4 {
		t.Fatalf("unsized tasks ran: %d/4", ran)
	}
	for _, task := range tasks {
		if !task.Done() {
			t.Fatalf("task not marked done")
		}
	}
	found := false
	for _, th := range k.Threads() {
		if th.Name() == "task-exec" {
			found = true
			if th.IsRT() {
				t.Fatalf("helper thread must be aperiodic")
			}
		}
	}
	if !found {
		t.Fatalf("helper thread missing")
	}
}

func TestTasksNeverDelayRTThread(t *testing.T) {
	// The defining property of the task mechanism (Section 3.1): periodic
	// and sporadic threads are not even delayed by tasks.
	k := testKernel(t, 1, 63, nil)
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 70_000)))
	k.RunNs(2_000_000)
	ran := 0
	// Flood with sized tasks that only fit in the 30% idle gap.
	for i := 0; i < 200; i++ {
		k.PostTask(0, &Task{Name: "flood", SizeCycles: 20_000, ActualCycles: 20_000,
			Fn: func(*Kernel, int) { ran++ }})
	}
	k.RunNs(50_000_000)
	if th.Misses != 0 {
		t.Fatalf("RT thread missed %d deadlines due to tasks", th.Misses)
	}
	if ran < 150 {
		t.Fatalf("tasks starved: %d/200", ran)
	}
}

func TestSizedTaskDefersWhenRTImminent(t *testing.T) {
	// A sized task that does not fit before the next RT arrival must not
	// run inline at that moment.
	k := testKernel(t, 1, 64, nil)
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 75_000)))
	k.RunNs(2_000_000)
	if !th.IsRT() {
		t.Fatalf("thread not admitted")
	}
	ran := 0
	// 25%% idle per period = ~25us; this task needs ~38us: it can only run
	// once the RT thread is gone.
	k.PostTask(0, &Task{Name: "big", SizeCycles: 50_000, ActualCycles: 50_000,
		Fn: func(*Kernel, int) { ran++ }})
	k.RunNs(5_000_000)
	if ran != 0 {
		t.Fatalf("oversized task ran despite imminent RT arrivals")
	}
	if th.Misses != 0 {
		t.Fatalf("RT thread missed")
	}
}

func TestTaskBacklogReporting(t *testing.T) {
	k := testKernel(t, 1, 65, nil)
	// Post before running: backlog visible.
	k.PostTask(0, &Task{Name: "s", SizeCycles: 1000})
	k.PostTask(0, &Task{Name: "u", ActualCycles: 1000})
	sized, unsized := k.TaskBacklog(0)
	if sized != 1 || unsized != 1 {
		t.Fatalf("backlog = (%d,%d), want (1,1)", sized, unsized)
	}
	k.RunNs(5_000_000)
	sized, unsized = k.TaskBacklog(0)
	if sized != 0 || unsized != 0 {
		t.Fatalf("backlog not drained: (%d,%d)", sized, unsized)
	}
}
