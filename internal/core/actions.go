package core

import (
	"fmt"

	"hrtsched/internal/sim"
)

// admitMarker is the internal continuation of a ChangeConstraints action:
// the admission-control computation runs as thread execution (the paper's
// "admission control runs in the context of the thread requesting
// admission"), and when the computation completes the verdict is applied.
type admitMarker struct {
	c Constraints
}

func (admitMarker) isAction() {}

// startAction drives the current thread's program until an action that
// takes time (Compute) or transfers control (block, sleep, exit, yield).
// Instantaneous actions execute inline at the current instant.
func (s *LocalScheduler) startAction(t *Thread, now sim.Time) {
	const maxInline = 1 << 16
	for spin := 0; ; spin++ {
		if spin > maxInline {
			panic(fmt.Sprintf("core: thread %q livelocked on zero-cost actions", t.name))
		}
		if t.cur == nil {
			tc := s.threadCtx(t)
			t.cur = t.prog.Next(tc)
			if _, ok := t.cur.(Compute); ok {
				t.curRemCycles = t.cur.(Compute).Cycles
			}
		}
		switch a := t.cur.(type) {
		case Compute:
			if t.curRemCycles <= 0 {
				t.cur = nil
				continue
			}
			s.armAction(t, sim.Duration(t.curRemCycles))
			return
		case Call:
			t.cur = nil
			a.Fn(s.threadCtx(t))
			if t.state != Running {
				// The call blocked/woke/reshaped the world via kernel
				// helpers; let the scheduler sort it out.
				s.invoke(ReasonThread, s.k.Eng.Now())
				return
			}
			continue
		case Yield:
			t.cur = nil
			if !t.isRTNow() {
				s.rrCounter++
				t.rrSeq = s.rrCounter
			}
			s.invoke(ReasonThread, s.k.Eng.Now())
			return
		case Block:
			t.cur = nil
			t.state = Blocked
			s.invoke(ReasonThread, s.k.Eng.Now())
			return
		case SleepUntil:
			t.cur = nil
			t.state = Sleeping
			s.scheduleWake(t, a.WallNs)
			s.invoke(ReasonThread, s.k.Eng.Now())
			return
		case Exit:
			s.exitThread(t)
			s.invoke(ReasonThread, s.k.Eng.Now())
			return
		case ChangeConstraints:
			// Consume the admission-control cost in thread context, then
			// apply the verdict.
			t.cur = admitMarker{c: a.C}
			cost := s.k.AdmitCostCycles
			if cost < 1 {
				cost = 1
			}
			s.armAction(t, sim.Duration(cost))
			return
		case admitMarker:
			// Reached only on resume after preemption mid-admission; the
			// remaining cost was already consumed.
			t.cur = nil
			s.applyAdmission(t, a.c)
			return
		default:
			panic(fmt.Sprintf("core: unknown action %T", t.cur))
		}
	}
}

// onActionComplete fires when the current Compute (or admission
// computation) finishes on time.
func (s *LocalScheduler) onActionComplete(t *Thread, now sim.Time) {
	s.accountCurrent(now)
	switch a := t.cur.(type) {
	case Compute:
		t.cur = nil
		t.curRemCycles = 0
		s.startAction(t, now)
	case admitMarker:
		t.cur = nil
		s.applyAdmission(t, a.c)
	default:
		panic(fmt.Sprintf("core: completion for non-timed action %T", t.cur))
	}
}

// threadCtx builds the program-facing context.
func (s *LocalScheduler) threadCtx(t *Thread) *ThreadCtx {
	return &ThreadCtx{
		K:        s.k,
		T:        t,
		CPU:      s.cpu.ID(),
		NowNs:    s.nowNs(0),
		Rand:     s.k.threadRands[t.id%len(s.k.threadRands)],
		AdmitOK:  t.admitOK,
		AdmitErr: t.admitErr,
	}
}

// applyAdmission runs the admission test for t's requested constraints and
// installs them on success. It always re-enters the scheduler: an admitted
// RT thread must wait for its first arrival, and a rejected or aperiodic
// thread resumes under its (possibly restored) old constraints.
func (s *LocalScheduler) applyAdmission(t *Thread, c Constraints) {
	nowNs := s.nowNs(0)
	err := s.Admit(t, c, nowNs)
	t.admitOK = err == nil
	t.admitErr = err
	if err == nil && c.Type != Aperiodic {
		// Thread leaves the CPU until its first arrival.
		t.state = PendingArrival
		s.mustPush(s.pending, t)
		s.current = nil
	}
	s.invoke(ReasonThread, s.k.Eng.Now())
}

// AdmitCheck runs the admission test for thread t requesting c without
// applying anything: would these constraints be admitted right now? The
// thread's own current reservation is treated as released for the test.
func (s *LocalScheduler) AdmitCheck(t *Thread, c Constraints) error {
	var limits *Limits
	if s.cfg.Admit != AdmitNone {
		limits = &s.cfg.Limits
	}
	if err := c.Validate(limits); err != nil {
		return err
	}
	if s.cfg.Admit == AdmitNone {
		return nil
	}
	ownPeriodic, ownSporadic := 0.0, 0.0
	switch t.cons.Type {
	case Periodic:
		ownPeriodic = t.cons.Utilization()
	case Sporadic:
		if t.isRTNow() {
			ownSporadic = t.cons.Utilization()
		}
	}
	switch c.Type {
	case Aperiodic:
		return nil
	case Periodic:
		if s.cfg.Admit == AdmitSim {
			if !s.admitBySimulation(t, c) {
				return s.rejectAdmission("hyperperiod-miss",
					"hyperperiod simulation found missed deadlines")
			}
			return nil
		}
		u := c.Utilization()
		if s.periodicUtil-ownPeriodic+u > s.periodicCap()+1e-12 {
			return s.rejectAdmission("util-cap",
				fmt.Sprintf("periodic util %.3f over cap %.3f",
					s.periodicUtil-ownPeriodic+u, s.periodicCap()))
		}
		return nil
	case Sporadic:
		u := c.Utilization()
		if s.sporadicUtil-ownSporadic+u > s.cfg.SporadicReservation+1e-12 {
			return s.rejectAdmission("sporadic-reservation",
				fmt.Sprintf("sporadic util %.3f over reservation %.3f",
					s.sporadicUtil-ownSporadic+u, s.cfg.SporadicReservation))
		}
		return nil
	}
	return ErrBadConstraints
}

// rejectAdmission builds the structured admission rejection, attaching the
// retry-after hint.
func (s *LocalScheduler) rejectAdmission(reason, detail string) error {
	return &AdmissionError{
		Reason:       reason,
		Detail:       detail,
		RetryAfterNs: s.retryAfterHintNs(s.nowNs(0)),
	}
}

// retryAfterHintNs estimates when capacity might free: the earliest
// deadline among the currently reserved real-time threads is the soonest
// instant an existing reservation can end (a sporadic burst completes, a
// periodic thread reaches a reshape boundary). Purely advisory — a backoff
// hint for rejected callers, never a guarantee.
func (s *LocalScheduler) retryAfterHintNs(nowNs int64) int64 {
	var best int64
	consider := func(t *Thread) {
		if t.cons.Type == Periodic || (t.cons.Type == Sporadic && t.isRTNow()) {
			if d := t.deadlineNs - nowNs; d > 0 && (best == 0 || d < best) {
				best = d
			}
		}
	}
	s.pending.All(consider)
	s.rtq.All(consider)
	if c := s.current; c != nil {
		consider(c)
	}
	if best == 0 {
		best = s.cfg.AperiodicQuantumNs
	}
	return best
}

// AdmitCurrent applies constraints to the currently running thread from
// within a Call action: on success for a real-time class the thread is
// parked to await its first arrival, and the enclosing action loop will
// re-enter the scheduler.
func (s *LocalScheduler) AdmitCurrent(t *Thread, c Constraints) error {
	if s.current != t || t.state != Running {
		return ErrThreadNotOnCPU
	}
	err := s.Admit(t, c, s.nowNs(0))
	if err == nil && c.Type != Aperiodic {
		t.state = PendingArrival
		s.mustPush(s.pending, t)
	}
	return err
}

// Admit performs local admission control for thread t requesting c, at
// wall-clock time nowNs, per Section 3.2. On success the thread's schedule
// is reset with admission time Gamma = nowNs. Aperiodic requests are always
// admitted.
func (s *LocalScheduler) Admit(t *Thread, c Constraints, nowNs int64) error {
	var limits *Limits
	if s.cfg.Admit != AdmitNone {
		limits = &s.cfg.Limits
	}
	if err := c.Validate(limits); err != nil {
		return err
	}
	// Release the thread's previous reservation.
	oldUtil := t.cons.Utilization()
	switch t.cons.Type {
	case Periodic:
		s.periodicUtil -= oldUtil
	case Sporadic:
		if t.isRTNow() {
			s.sporadicUtil -= oldUtil
		}
	}
	restore := func() {
		switch t.cons.Type {
		case Periodic:
			s.periodicUtil += oldUtil
		case Sporadic:
			if t.isRTNow() {
				s.sporadicUtil += oldUtil
			}
		}
	}

	switch c.Type {
	case Aperiodic:
		t.resetSchedule(c, nowNs, s.clock.NanosToCycles)
		return nil
	case Periodic:
		u := c.Utilization()
		switch {
		case s.cfg.Admit == AdmitNone:
			// accept unconditionally
		case s.cfg.Admit == AdmitSim:
			if !s.admitBySimulation(t, c) {
				restore()
				return s.rejectAdmission("hyperperiod-miss",
					"hyperperiod simulation found missed deadlines")
			}
		default:
			if !s.periodicFits(u) {
				restore()
				return s.rejectAdmission("util-cap",
					fmt.Sprintf("periodic util %.3f over cap (have %.3f, cap %.3f)",
						u, s.periodicUtil, s.periodicCap()))
			}
		}
		s.periodicUtil += u
		t.resetSchedule(c, nowNs, s.clock.NanosToCycles)
		return nil
	case Sporadic:
		u := c.Utilization()
		if s.cfg.Admit != AdmitNone && s.sporadicUtil+u > s.cfg.SporadicReservation+1e-12 {
			restore()
			return s.rejectAdmission("sporadic-reservation",
				fmt.Sprintf("sporadic util %.3f over reservation %.3f",
					s.sporadicUtil+u, s.cfg.SporadicReservation))
		}
		s.sporadicUtil += u
		t.resetSchedule(c, nowNs, s.clock.NanosToCycles)
		return nil
	}
	restore()
	return ErrBadConstraints
}

// periodicCap returns the utilization available to periodic threads under
// the active admission policy. The cap is the boot-time utilization limit:
// the sporadic and aperiodic reservations guide how non-periodic classes
// are served when present (the scheduler is work-conserving), they are not
// subtracted from the admission cap — the paper's evaluation admits
// period/slice combinations up to 90% utilization under the default
// configuration (Figures 13-16).
func (s *LocalScheduler) periodicCap() float64 {
	cap := s.cfg.UtilizationLimit
	if s.cfg.Admit == AdmitRM {
		// Liu & Layland: n(2^(1/n)-1) of the available fraction.
		n := float64(s.countPeriodic() + 1)
		cap *= n * (pow2inv(n) - 1)
	}
	return cap
}

func (s *LocalScheduler) periodicFits(u float64) bool {
	return s.periodicUtil+u <= s.periodicCap()+1e-12
}

func (s *LocalScheduler) countPeriodic() int {
	n := 0
	count := func(t *Thread) {
		if t.cons.Type == Periodic {
			n++
		}
	}
	s.pending.All(count)
	s.rtq.All(count)
	if s.current != nil && s.current.cons.Type == Periodic {
		n++
	}
	return n
}

// pow2inv computes 2^(1/n) without importing math for a single call site.
func pow2inv(n float64) float64 {
	// Newton iteration on f(x) = n*ln(x) - ln(2) is overkill; use the
	// identity 2^(1/n) = exp(ln2/n) with a short series good to ~1e-9 for
	// n >= 1 (argument <= ln2).
	x := 0.6931471805599453 / n
	term, sum := 1.0, 1.0
	for k := 1; k <= 12; k++ {
		term *= x / float64(k)
		sum += term
	}
	return sum
}

// exitThread finalizes t: releases reservations, detaches it from the CPU,
// and fires OnExit.
func (s *LocalScheduler) exitThread(t *Thread) {
	switch t.cons.Type {
	case Periodic:
		s.periodicUtil -= t.cons.Utilization()
		if s.periodicUtil < 0 {
			s.periodicUtil = 0
		}
	case Sporadic:
		if t.isRTNow() {
			s.sporadicUtil -= t.cons.Utilization()
			if s.sporadicUtil < 0 {
				s.sporadicUtil = 0
			}
		}
	}
	t.state = Exited
	t.cur = nil
	s.k.liveThreads--
	if t.stackAddr != 0 {
		s.k.reapStack(t.stackAddr)
		t.stackAddr = 0
	}
	if t.OnExit != nil {
		t.OnExit(t)
	}
}

// scheduleWake arms a wake event for a sleeping thread at wall-clock ns.
func (s *LocalScheduler) scheduleWake(t *Thread, wallNs int64) {
	delta := wallNs - s.nowNs(0)
	if delta < 0 {
		delta = 0
	}
	cycles := s.clock.NanosToCycles(delta)
	s.k.Eng.After(sim.Duration(cycles), sim.Hard, func(now sim.Time) {
		if t.state == Sleeping {
			s.k.Wake(t)
		}
	})
}
