// Package core implements the paper's primary contribution: the hard
// real-time scheduler of Section 3. Each CPU runs an independent local
// scheduler — an eager earliest-deadline-first engine with a pending queue,
// a real-time run queue and a non-real-time run queue — and the global
// scheduler is nothing more than the loosely-coupled collection of local
// schedulers coordinating through a shared notion of wall-clock time.
package core

import (
	"errors"
	"fmt"
)

// ConstraintType selects the timing-constraint class of Section 3.1,
// following Liu's model.
type ConstraintType uint8

const (
	// Aperiodic threads have no real-time constraints, only a priority.
	// Newly created threads begin life in this class.
	Aperiodic ConstraintType = iota
	// Periodic threads have (phase, period, slice): first arrival at
	// admission+phase, then every period, with slice guaranteed per period.
	Periodic
	// Sporadic threads have (phase, size, deadline, priority): one
	// guaranteed burst of size before the deadline, then aperiodic life.
	Sporadic
)

// String returns the class name.
func (t ConstraintType) String() string {
	switch t {
	case Aperiodic:
		return "aperiodic"
	case Periodic:
		return "periodic"
	case Sporadic:
		return "sporadic"
	default:
		return fmt.Sprintf("ConstraintType(%d)", uint8(t))
	}
}

// Constraints is the admission-control interface of the scheduler. All
// times are nanoseconds of wall-clock time held in int64, as in the paper.
type Constraints struct {
	Type ConstraintType

	// Priority orders aperiodic threads (lower value = more important).
	// For sporadic threads it is the priority of their aperiodic afterlife.
	Priority uint32

	// PhaseNs delays the first arrival relative to the admission time.
	PhaseNs int64

	// PeriodNs and SliceNs define a periodic thread (tau and sigma).
	PeriodNs int64
	SliceNs  int64

	// SizeNs and DeadlineNs define a sporadic thread: SizeNs of execution
	// guaranteed before admission time + DeadlineNs.
	SizeNs     int64
	DeadlineNs int64
}

// AperiodicConstraints returns the default constraints every thread starts
// with, and the fallback used when group admission fails (Algorithm 1).
func AperiodicConstraints(priority uint32) Constraints {
	return Constraints{Type: Aperiodic, Priority: priority}
}

// PeriodicConstraints builds a periodic constraint set.
func PeriodicConstraints(phaseNs, periodNs, sliceNs int64) Constraints {
	return Constraints{Type: Periodic, PhaseNs: phaseNs, PeriodNs: periodNs, SliceNs: sliceNs}
}

// SporadicConstraints builds a sporadic constraint set.
func SporadicConstraints(phaseNs, sizeNs, deadlineNs int64, prio uint32) Constraints {
	return Constraints{Type: Sporadic, PhaseNs: phaseNs, SizeNs: sizeNs,
		DeadlineNs: deadlineNs, Priority: prio}
}

// Utilization returns slice/period for periodic constraints and
// size/deadline for sporadic ones; aperiodic threads have zero reserved
// utilization.
func (c Constraints) Utilization() float64 {
	switch c.Type {
	case Periodic:
		if c.PeriodNs <= 0 {
			return 0
		}
		return float64(c.SliceNs) / float64(c.PeriodNs)
	case Sporadic:
		if c.DeadlineNs <= 0 {
			return 0
		}
		return float64(c.SizeNs) / float64(c.DeadlineNs)
	default:
		return 0
	}
}

// Errors returned by constraint validation and admission control.
var (
	ErrBadConstraints  = errors.New("core: malformed constraints")
	ErrTooFine         = errors.New("core: constraints below platform granularity")
	ErrAdmission       = errors.New("core: admission control rejected constraints")
	ErrTooManyThreads  = errors.New("core: compile-time thread limit reached")
	ErrThreadNotOnCPU  = errors.New("core: thread is not bound where expected")
	ErrSchedulerClosed = errors.New("core: scheduler is shut down")
)

// AdmissionError is the structured rejection produced by admission control:
// a stable machine-readable reason, human-readable detail, and a hint for
// when the same request might plausibly succeed. It unwraps to
// ErrAdmission, so errors.Is(err, ErrAdmission) keeps working.
type AdmissionError struct {
	// Reason is a stable tag: "util-cap", "sporadic-reservation", or
	// "hyperperiod-miss".
	Reason string
	Detail string
	// RetryAfterNs estimates when capacity might free (the earliest
	// deadline of an existing reservation); 0 means no basis for a hint.
	RetryAfterNs int64
}

// Error renders the rejection with its reason and retry hint.
func (e *AdmissionError) Error() string {
	msg := ErrAdmission.Error() + ": " + e.Reason
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.RetryAfterNs > 0 {
		msg += fmt.Sprintf(" (retry after %dns)", e.RetryAfterNs)
	}
	return msg
}

// Unwrap ties the structured error to the ErrAdmission sentinel.
func (e *AdmissionError) Unwrap() error { return ErrAdmission }

// Validate checks structural sanity and, when limits is non-nil, the
// platform granularity bounds of Section 3.3 ("bounds are also placed on
// the granularity and minimum size of the timing constraints").
func (c Constraints) Validate(limits *Limits) error {
	switch c.Type {
	case Aperiodic:
		return nil
	case Periodic:
		if c.PeriodNs <= 0 || c.SliceNs <= 0 || c.SliceNs > c.PeriodNs || c.PhaseNs < 0 {
			return fmt.Errorf("%w: periodic phase=%d period=%d slice=%d",
				ErrBadConstraints, c.PhaseNs, c.PeriodNs, c.SliceNs)
		}
		if limits != nil {
			if c.PeriodNs < limits.MinPeriodNs {
				return fmt.Errorf("%w: period %dns < minimum %dns",
					ErrTooFine, c.PeriodNs, limits.MinPeriodNs)
			}
			if c.SliceNs < limits.MinSliceNs {
				return fmt.Errorf("%w: slice %dns < minimum %dns",
					ErrTooFine, c.SliceNs, limits.MinSliceNs)
			}
		}
		return nil
	case Sporadic:
		if c.SizeNs <= 0 || c.DeadlineNs <= 0 || c.SizeNs > c.DeadlineNs || c.PhaseNs < 0 {
			return fmt.Errorf("%w: sporadic phase=%d size=%d deadline=%d",
				ErrBadConstraints, c.PhaseNs, c.SizeNs, c.DeadlineNs)
		}
		if limits != nil && c.SizeNs < limits.MinSliceNs {
			return fmt.Errorf("%w: size %dns < minimum %dns",
				ErrTooFine, c.SizeNs, limits.MinSliceNs)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown type %d", ErrBadConstraints, c.Type)
	}
}

// Limits bounds the constraints a local scheduler will consider, limiting
// the possible scheduler invocation rate so that scheduler overhead can be
// folded into the boot-time utilization limit.
type Limits struct {
	MinPeriodNs int64
	MinSliceNs  int64
}
