package core

import (
	"testing"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

func TestSMIDelaysButEagerAbsorbs(t *testing.T) {
	// A feasible periodic thread with a mid-period SMI: eager scheduling
	// started the slice early, so the missing time does not push completion
	// past the deadline.
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 51)
	k := Boot(m, DefaultConfig(spec))
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 40_000)))
	// Inject an SMI of 26,000 cycles (20us) every period, landing mid-slice.
	for i := int64(0); i < 50; i++ {
		m.SMI.InjectAt(sim.Time(2_000_000+i*130_000), 26_000)
	}
	k.RunNs(20_000_000)
	if th.Arrivals < 150 {
		t.Fatalf("arrivals = %d", th.Arrivals)
	}
	if th.Misses != 0 {
		t.Fatalf("eager EDF missed %d deadlines under absorbable SMIs", th.Misses)
	}
	// The missing time must show up somewhere: total missing time observed.
	if m.SMI.TotalMissingTime() != 50*26_000 {
		t.Fatalf("missing time = %d", m.SMI.TotalMissingTime())
	}
}

func mkPeriodic(c Constraints) Program {
	admitted := false
	return ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			return ChangeConstraints{C: c}
		}
		return Compute{Cycles: 20_000}
	})
}

func TestLazyEDFMissesUnderSMI(t *testing.T) {
	// Same scenario but with a tight slice and lazy (latest-possible-start)
	// scheduling: SMIs landing near the deadline push completion past it
	// far more often than under eager scheduling.
	run := func(mode EDFMode) int64 {
		spec := machine.PhiKNL().Scaled(1)
		spec.MeanSMIGapCycles = 6_500_000 // ~5ms
		spec.SMIDurationCycles = 130_000  // 100us
		spec.SMIDurationJitter = 0
		m := machine.New(spec, 52)
		cfg := DefaultConfig(spec)
		cfg.Mode = mode
		k := Boot(m, cfg)
		th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 500_000, 300_000)))
		k.RunNs(200_000_000)
		return th.Misses
	}
	eager := run(EagerEDF)
	lazy := run(LazyEDF)
	if lazy <= eager {
		t.Fatalf("lazy EDF (%d misses) should miss more than eager (%d) under SMIs",
			lazy, eager)
	}
}

func TestLazyEDFStillMeetsDeadlinesWithoutSMIs(t *testing.T) {
	k := testKernel(t, 1, 53, func(c *Config) { c.Mode = LazyEDF })
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 200_000, 60_000)))
	k.RunNs(50_000_000)
	if th.Arrivals < 200 {
		t.Fatalf("arrivals = %d", th.Arrivals)
	}
	if th.Misses != 0 {
		t.Fatalf("lazy EDF missed %d deadlines on a quiet machine", th.Misses)
	}
}

func TestDeviceIRQDelaysThreadOnLadenCPU(t *testing.T) {
	spec := machine.PhiKNL().Scaled(2)
	m := machine.New(spec, 54)
	cfg := DefaultConfig(spec)
	cfg.PriorityFiltering = false // let interrupts hit the thread
	k := Boot(m, cfg)
	dev := m.IRQ.AddDevice("nic", 0, 50_000) // manual raising
	th := k.Spawn("victim", 0, spin(10_000))
	k.RunNs(2_000_000)
	before := th.SupplyCycles
	// 20 interrupts, each stealing ~50k+irq cycles from the thread.
	for i := 0; i < 20; i++ {
		k.Eng.Schedule(k.Eng.Now()+sim.Time(i*100_000), sim.Hard, func(sim.Time) { dev.Raise() })
	}
	k.RunNs(2_000_000)
	gained := th.SupplyCycles - before
	wall := int64(2_000_000 * 13 / 10) // 2ms in cycles
	stolen := wall - gained
	if stolen < 15*50_000 {
		t.Fatalf("interrupt handlers stole only %d cycles, want >= %d", stolen, 15*50_000)
	}
	if k.Locals[0].Stats.DeviceIRQs != 20 {
		t.Fatalf("device IRQs seen: %d", k.Locals[0].Stats.DeviceIRQs)
	}
}

func TestPriorityFilteringShieldsRTThread(t *testing.T) {
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 55)
	k := Boot(m, DefaultConfig(spec)) // filtering on by default
	m.IRQ.AddDevice("nic", 60_000, 30_000)
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 60_000)))
	k.RunNs(50_000_000)
	if th.Misses != 0 {
		t.Fatalf("RT thread missed %d deadlines despite priority filtering", th.Misses)
	}
	if th.Arrivals < 400 {
		t.Fatalf("arrivals = %d", th.Arrivals)
	}
}

func TestInterruptThreadDefersWork(t *testing.T) {
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 56)
	cfg := DefaultConfig(spec)
	cfg.InterruptThread = true
	cfg.PriorityFiltering = false
	k := Boot(m, cfg)
	dev := m.IRQ.AddDevice("nic", 0, 80_000)
	k.Spawn("bg", 0, spin(100_000))
	k.RunNs(1_000_000)
	for i := 0; i < 5; i++ {
		dev.Raise()
	}
	k.RunNs(10_000_000)
	// The deferred bodies ran as tasks on the helper thread.
	var helper *Thread
	for _, th := range k.Threads() {
		if th.Name() == "task-exec" {
			helper = th
		}
	}
	if helper == nil {
		t.Fatalf("interrupt thread never spawned")
	}
	if helper.SupplyCycles < 5*60_000 {
		t.Fatalf("deferred IRQ bodies under-executed: %d cycles", helper.SupplyCycles)
	}
	sized, unsized := k.TaskBacklog(0)
	if sized != 0 || unsized != 0 {
		t.Fatalf("task backlog not drained: %d/%d", sized, unsized)
	}
}

func TestTwoRTThreadsEDFOrdering(t *testing.T) {
	// Two periodic threads on one CPU: the shorter-period thread must not
	// be starved by the longer one (EDF interleaves them), and both meet
	// all deadlines at a combined 60% utilization.
	k := testKernel(t, 1, 57, nil)
	a := k.Spawn("fast", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 30_000)))
	b := k.Spawn("slow", 0, mkPeriodic(PeriodicConstraints(0, 400_000, 120_000)))
	k.RunNs(80_000_000)
	if a.Misses != 0 || b.Misses != 0 {
		t.Fatalf("misses: fast=%d slow=%d", a.Misses, b.Misses)
	}
	if a.Arrivals < 700 || b.Arrivals < 150 {
		t.Fatalf("arrivals: fast=%d slow=%d", a.Arrivals, b.Arrivals)
	}
	// Supply proportions ~30%:30%.
	fa := float64(a.SupplyCycles)
	fb := float64(b.SupplyCycles)
	if ratio := fa / fb; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("EDF supply imbalance: %f", ratio)
	}
}

func TestAperiodicPriorityPreemptsOnWake(t *testing.T) {
	k := testKernel(t, 1, 58, nil)
	low := k.SpawnPriority("low", 0, spin(10_000), 200)
	var highRan bool
	high := k.SpawnPriority("high", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !highRan {
			highRan = true
			return Block{}
		}
		return Compute{Cycles: 5_000}
	}), 10)
	k.RunNs(5_000_000)
	if high.State() != Blocked {
		t.Fatalf("high thread not blocked: %v", high.State())
	}
	lowBefore := low.SupplyCycles
	k.Wake(high)
	k.RunNs(5_000_000)
	// After the wake, the high-priority thread must dominate the CPU.
	highGain := high.SupplyCycles
	lowGain := low.SupplyCycles - lowBefore
	if highGain < 4*lowGain {
		t.Fatalf("priority not honoured after wake: high=%d low=%d", highGain, lowGain)
	}
}

func TestSwitchStatsAndHook(t *testing.T) {
	k := testKernel(t, 1, 59, nil)
	var hookCalls int
	k.OnSwitch = func(cpu int, th *Thread, nowNs int64, wall sim.Time) {
		if cpu != 0 || th == nil {
			t.Fatalf("bad hook args")
		}
		hookCalls++
	}
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 50_000)))
	k.RunNs(10_000_000)
	if hookCalls < 90 {
		t.Fatalf("OnSwitch calls = %d, want ~100", hookCalls)
	}
	if th.Switches < 90 {
		t.Fatalf("thread switches = %d", th.Switches)
	}
	st := &k.Locals[0].Stats
	if st.TimerIRQs < 150 {
		t.Fatalf("timer IRQs = %d", st.TimerIRQs)
	}
	if st.IRQCycles.N() == 0 || st.ReschedCycles.N() == 0 {
		t.Fatalf("overhead breakdown not recorded")
	}
}

func TestMaxThreadsBound(t *testing.T) {
	k := testKernel(t, 1, 60, func(c *Config) { c.MaxThreads = 4 })
	for i := 0; i < 4; i++ {
		k.Spawn("t", 0, spin(1000))
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("compile-time thread bound not enforced")
		}
	}()
	k.Spawn("overflow", 0, spin(1000))
}
