package core

// InvariantChecker is the opt-in "black box recorder" for the scheduler:
// attached through Hooks.Pass it validates, on every scheduler pass, that
// the EDF run queue is correctly ordered, admitted utilization respects the
// configured limits, each CPU's TSC-derived clock never runs backwards, and
// the cycle ledger conserves time (compute + idle + overhead + missing ==
// wall). Every violation is recorded with the engine's event count, so a
// failing run collapses to a one-line deterministic repro: replaying the
// same seed and scenario up to that event reproduces the violation
// bit-identically (the whole simulation derives from one splittable RNG).

import (
	"fmt"
	"strings"
)

// Violation is one invariant failure. All fields derive from simulation
// state only — never host time or map order — so reports are deterministic.
type Violation struct {
	// Event is the engine step count at which the violation was observed;
	// it is the -until-event operand of the repro line.
	Event  uint64
	CPU    int
	Check  string // "edf-order" | "arrival-order" | "util-cap" | "tsc-monotone" | "conservation"
	Detail string
}

// String renders the violation as one deterministic line.
func (v Violation) String() string {
	return fmt.Sprintf("invariant violation: check=%s cpu=%d event=%d %s",
		v.Check, v.CPU, v.Event, v.Detail)
}

// InvariantChecker validates scheduler invariants every pass. Zero overhead
// when not attached; deterministic when it is.
type InvariantChecker struct {
	k        *Kernel
	seed     uint64
	scenario string

	// SlackCycles absorbs benign attribution gaps in the conservation
	// check. The ledger is conservative — interrupted work is left to the
	// idle residual, never double counted — so a residual more negative
	// than this slack is a genuine accounting bug.
	SlackCycles int64
	// MaxViolations caps recording; checking continues but further
	// violations are dropped so a hot failure cannot swamp memory.
	MaxViolations int

	passes     int64
	lastCycles []int64
	violations []Violation
}

// AttachInvariants installs a checker on k via Hooks.Pass, chaining any
// hook already present. seed and scenario caption the repro line printed
// for violations.
func AttachInvariants(k *Kernel, seed uint64, scenario string) *InvariantChecker {
	c := &InvariantChecker{
		k:             k,
		seed:          seed,
		scenario:      scenario,
		SlackCycles:   4096,
		MaxViolations: 64,
		lastCycles:    make([]int64, k.NumCPUs()),
	}
	for i := range c.lastCycles {
		c.lastCycles[i] = -(1 << 62)
	}
	prev := k.Hooks.Pass
	k.Hooks.Pass = func(cpu int, s *LocalScheduler, nowNs int64) {
		if prev != nil {
			prev(cpu, s, nowNs)
		}
		c.checkPass(cpu, s)
	}
	return c
}

// Passes returns how many scheduler passes have been checked.
func (c *InvariantChecker) Passes() int64 { return c.passes }

// Violations returns the recorded violations in observation order.
func (c *InvariantChecker) Violations() []Violation { return c.violations }

// Ok reports whether no invariant has been violated.
func (c *InvariantChecker) Ok() bool { return len(c.violations) == 0 }

// ReproLine returns the deterministic one-line replay command for v: the
// chaos CLI under the same seed and scenario, stopped at the offending
// event, reproduces the identical report.
func (c *InvariantChecker) ReproLine(v Violation) string {
	return fmt.Sprintf("cmd/chaos -seed %d -scenario %s -until-event %d",
		c.seed, c.scenario, v.Event)
}

// Report renders every recorded violation with its repro line.
func (c *InvariantChecker) Report() string {
	var b strings.Builder
	for _, v := range c.violations {
		b.WriteString(v.String())
		b.WriteString("\n    repro: ")
		b.WriteString(c.ReproLine(v))
		b.WriteByte('\n')
	}
	return b.String()
}

func (c *InvariantChecker) checkPass(cpu int, s *LocalScheduler) {
	c.passes++
	ev := c.k.Eng.Steps()

	// EDF order: the run queues must be valid min-heaps with consistent
	// position indices.
	if d := heapDefect(s.rtq, byDeadline); d != "" {
		c.record(ev, cpu, "edf-order", d)
	}
	if d := heapDefect(s.pending, byArrival); d != "" {
		c.record(ev, cpu, "arrival-order", d)
	}

	// Admitted utilization within limits. With admission control disabled
	// the limit is deliberately not enforced (Figures 6-9 study exactly
	// that), but the tallies must still be sane.
	if s.periodicUtil < -1e-9 || s.sporadicUtil < -1e-9 {
		c.record(ev, cpu, "util-cap", fmt.Sprintf(
			"negative admitted utilization: periodic=%.9f sporadic=%.9f",
			s.periodicUtil, s.sporadicUtil))
	} else if s.cfg.Admit == AdmitEDF || s.cfg.Admit == AdmitRM {
		if s.periodicUtil > s.cfg.UtilizationLimit+1e-9 {
			c.record(ev, cpu, "util-cap", fmt.Sprintf(
				"periodic util %.9f over limit %.9f",
				s.periodicUtil, s.cfg.UtilizationLimit))
		}
		if s.sporadicUtil > s.cfg.SporadicReservation+1e-9 {
			c.record(ev, cpu, "util-cap", fmt.Sprintf(
				"sporadic util %.9f over reservation %.9f",
				s.sporadicUtil, s.cfg.SporadicReservation))
		}
	}

	// Per-CPU clock monotonicity (a TSC re-skew below the software offset
	// shows up here).
	nc := s.clock.NowCycles()
	if nc < c.lastCycles[cpu] {
		c.record(ev, cpu, "tsc-monotone", fmt.Sprintf(
			"clock cycles went backwards: %d after %d", nc, c.lastCycles[cpu]))
	}
	c.lastCycles[cpu] = nc

	// Accounting conservation: idle is the residual of
	// wall == busy + overhead + irq-window + inline + missing + idle,
	// so the checkable claim is that nothing was attributed twice.
	led := s.Ledger()
	if led.IdleCycles < -c.SlackCycles {
		c.record(ev, cpu, "conservation", fmt.Sprintf(
			"attributed cycles exceed wall: idle=%d wall=%d missing=%d busy=%d overhead=%d irqwin=%d inline=%d",
			led.IdleCycles, led.WallCycles, led.MissingCycles, led.BusyCycles,
			led.OverheadCycles, led.IRQWindowCycles, led.InlineCycles))
	}
}

func (c *InvariantChecker) record(ev uint64, cpu int, check, detail string) {
	if len(c.violations) >= c.MaxViolations {
		return
	}
	c.violations = append(c.violations, Violation{Event: ev, CPU: cpu, Check: check, Detail: detail})
}

// heapDefect validates the heap property and index bookkeeping of a run
// queue, returning a deterministic description of the first defect found.
func heapDefect(h *threadHeap, less threadOrder) string {
	for i, t := range h.items {
		if t.qIdx != i {
			return fmt.Sprintf("thread %d records index %d but sits at %d", t.id, t.qIdx, i)
		}
		if i > 0 {
			p := (i - 1) / 2
			if less(t, h.items[p]) {
				return fmt.Sprintf("thread %d at index %d orders before its parent (thread %d)",
					t.id, i, h.items[p].id)
			}
		}
	}
	return ""
}
