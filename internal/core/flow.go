package core

// Step is one stage of a continuation-passing program: it returns the
// action to perform now and the step to run once that action completes.
// A nil action skips straight to the next step; a nil next step ends the
// flow. Steps make multi-phase kernel protocols (group admission, barriers)
// expressible as readable chains instead of hand-rolled state machines.
type Step func(tc *ThreadCtx) (Action, Step)

// FlowProgram turns a step chain into a Program. When the chain ends the
// thread exits.
func FlowProgram(start Step) Program {
	return FlowThen(start, nil)
}

// FlowThen runs the step chain and then hands control to cont (which may
// be another long-running Program). A nil cont exits the thread at the end
// of the chain.
func FlowThen(start Step, cont Program) Program {
	cur := start
	return ProgramFunc(func(tc *ThreadCtx) Action {
		for cur != nil {
			a, next := cur(tc)
			cur = next
			if a != nil {
				return a
			}
		}
		if cont != nil {
			return cont.Next(tc)
		}
		return Exit{}
	})
}

// Do returns a step performing a single action.
func Do(a Action, next Step) Step {
	return func(tc *ThreadCtx) (Action, Step) { return a, next }
}

// DoCall returns a step that runs fn instantaneously.
func DoCall(fn func(tc *ThreadCtx), next Step) Step {
	return Do(Call{Fn: fn}, next)
}

// DoCompute returns a step that consumes cycles.
func DoCompute(cycles int64, next Step) Step {
	return Do(Compute{Cycles: cycles}, next)
}

// DoComputeFn returns a step that consumes a cycle count computed at
// execution time (for costs that depend on earlier steps' outcomes).
func DoComputeFn(f func(tc *ThreadCtx) int64, next Step) Step {
	return func(tc *ThreadCtx) (Action, Step) {
		return Compute{Cycles: f(tc)}, next
	}
}

// If returns a step that branches on cond at execution time.
func If(cond func(tc *ThreadCtx) bool, then, els Step) Step {
	return func(tc *ThreadCtx) (Action, Step) {
		if cond(tc) {
			return nil, then
		}
		return nil, els
	}
}

// Chain concatenates flows: each element is a function given the rest of
// the chain as its continuation. It reads top-to-bottom.
func Chain(parts ...func(next Step) Step) Step {
	var build func(i int) Step
	build = func(i int) Step {
		if i >= len(parts) {
			return nil
		}
		return parts[i](build(i + 1))
	}
	return build(0)
}
