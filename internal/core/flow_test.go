package core

import "testing"

func TestSeqProgram(t *testing.T) {
	k := testKernel(t, 1, 81, nil)
	order := []string{}
	th := k.Spawn("seq", 0, Seq(
		Call{Fn: func(*ThreadCtx) { order = append(order, "a") }},
		Compute{Cycles: 1000},
		Call{Fn: func(*ThreadCtx) { order = append(order, "b") }},
	))
	k.RunNs(5_000_000)
	if th.State() != Exited {
		t.Fatalf("seq did not exit: %v", th.State())
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
}

func TestLoopProgram(t *testing.T) {
	k := testKernel(t, 1, 82, nil)
	iters := 0
	th := k.Spawn("loop", 0, Loop(func(i int, tc *ThreadCtx) Action {
		if i >= 5 {
			return nil
		}
		iters++
		return Compute{Cycles: 1000}
	}))
	k.RunNs(5_000_000)
	if th.State() != Exited || iters != 5 {
		t.Fatalf("loop iters=%d state=%v", iters, th.State())
	}
}

func TestFlowChainOrderAndSharing(t *testing.T) {
	k := testKernel(t, 2, 83, nil)
	var events []string
	record := func(tag string) func(*ThreadCtx) {
		return func(tc *ThreadCtx) {
			events = append(events, tag+tc.T.Name())
		}
	}
	chain := Chain(
		func(n Step) Step { return DoCall(record("x"), n) },
		func(n Step) Step { return DoCompute(1000, n) },
		func(n Step) Step { return DoCall(record("y"), n) },
	)
	// The same chain is shared by two threads; each gets its own cursor.
	a := k.Spawn("A", 0, FlowProgram(chain))
	b := k.Spawn("B", 1, FlowProgram(chain))
	k.RunNs(5_000_000)
	if a.State() != Exited || b.State() != Exited {
		t.Fatalf("flows did not complete")
	}
	var xa, ya, xb, yb bool
	for _, e := range events {
		switch e {
		case "xA":
			xa = true
		case "yA":
			if !xa {
				t.Fatalf("y before x on A: %v", events)
			}
			ya = true
		case "xB":
			xb = true
		case "yB":
			if !xb {
				t.Fatalf("y before x on B: %v", events)
			}
			yb = true
		}
	}
	if !(xa && ya && xb && yb) {
		t.Fatalf("missing events: %v", events)
	}
}

func TestFlowIf(t *testing.T) {
	k := testKernel(t, 1, 84, nil)
	var path string
	cond := false
	step := If(func(tc *ThreadCtx) bool { return cond },
		DoCall(func(*ThreadCtx) { path = "then" }, nil),
		DoCall(func(*ThreadCtx) { path = "else" }, nil))
	k.Spawn("f", 0, FlowProgram(step))
	k.RunNs(2_000_000)
	if path != "else" {
		t.Fatalf("path = %q", path)
	}
	cond = true
	path = ""
	k.Spawn("g", 0, FlowProgram(step))
	k.RunNs(2_000_000)
	if path != "then" {
		t.Fatalf("path = %q", path)
	}
}

func TestFlowThenContinuation(t *testing.T) {
	k := testKernel(t, 1, 85, nil)
	flowDone := false
	bodyCalls := 0
	prog := FlowThen(
		DoCall(func(*ThreadCtx) { flowDone = true }, nil),
		ProgramFunc(func(tc *ThreadCtx) Action {
			if !flowDone {
				t.Fatalf("continuation ran before flow completed")
			}
			bodyCalls++
			if bodyCalls > 3 {
				return Exit{}
			}
			return Compute{Cycles: 1000}
		}))
	th := k.Spawn("ft", 0, prog)
	k.RunNs(5_000_000)
	if th.State() != Exited || bodyCalls != 4 {
		t.Fatalf("continuation calls = %d", bodyCalls)
	}
}

func TestDoComputeFnDynamicCost(t *testing.T) {
	k := testKernel(t, 1, 86, nil)
	cost := int64(250_000)
	th := k.Spawn("dc", 0, FlowProgram(
		DoComputeFn(func(tc *ThreadCtx) int64 { return cost }, nil)))
	k.RunNs(5_000_000)
	if th.SupplyCycles < cost {
		t.Fatalf("dynamic compute under-executed: %d", th.SupplyCycles)
	}
}

func TestZeroCycleComputeDoesNotLivelock(t *testing.T) {
	k := testKernel(t, 1, 87, nil)
	th := k.Spawn("z", 0, Seq(
		Compute{Cycles: 0},
		Compute{Cycles: -5},
		Compute{Cycles: 100},
	))
	k.RunNs(5_000_000)
	if th.State() != Exited {
		t.Fatalf("zero-cycle compute stalled the thread: %v", th.State())
	}
}
