package core

import (
	"testing"
	"testing/quick"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// TestPropertyAdmittedNeverMisses is the scheduler's central contract
// (Section 3.1): "If the scheduler accepts these constraints, it guarantees
// that they will be met until the thread decides to change them." Random
// periodic task sets are thrown at admission control; whatever it admits
// must then run with zero deadline misses.
//
// Scope: the classic utilization-bound admission test is overhead-blind
// (it is the paper's classic scheme; see ablation-admitsim), so the
// property holds for sets whose overhead-aware demand also fits. Task sets
// beyond that are skipped here; the unconditional version of this property
// runs under the AdmitSim policy below.
func TestPropertyAdmittedNeverMisses(t *testing.T) {
	periods := []int64{50_000, 100_000, 200_000, 250_000, 500_000, 1_000_000}
	f := func(seed uint64, nRaw uint8, sliceRaw []uint8) bool {
		n := int(nRaw%5) + 1
		if len(sliceRaw) < n {
			return true
		}
		k := testKernel(t, 1, seed, nil)
		rng := sim.NewRand(seed)
		overheadNs := k.Clocks[0].CyclesToNanos(k.M.Spec.TotalSchedCycles())
		overheadAware := 0.0
		ths := make([]*Thread, 0, n)
		for i := 0; i < n; i++ {
			period := periods[rng.Intn(len(periods))]
			pct := int64(sliceRaw[i]%35) + 2 // 2..36% each
			cons := PeriodicConstraints(0, period, period*pct/100)
			overheadAware += float64(cons.SliceNs+2*overheadNs) / float64(period)
			ths = append(ths, k.Spawn("p", 0, mkPeriodic(cons)))
		}
		if overheadAware > 0.97 {
			return true // beyond the classic bound's validity; see AdmitSim
		}
		k.RunNs(40_000_000)
		for _, th := range ths {
			if th.IsRT() && th.Misses != 0 {
				t.Logf("seed=%d: admitted thread missed %d/%d (cons %+v)",
					seed, th.Misses, th.Arrivals, th.Constraints())
				return false
			}
			if th.IsRT() && th.Arrivals == 0 {
				return false // admitted but never ran
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAdmittedNeverMissesUnderSim does the same under the
// hyperperiod-simulation admission policy, which should be at least as
// safe.
func TestPropertyAdmittedNeverMissesUnderSim(t *testing.T) {
	periods := []int64{100_000, 200_000, 400_000}
	f := func(seed uint64, sliceRaw []uint8) bool {
		n := 3
		if len(sliceRaw) < n {
			return true
		}
		k := testKernel(t, 1, seed, func(c *Config) { c.Admit = AdmitSim })
		rng := sim.NewRand(seed)
		ths := make([]*Thread, 0, n)
		for i := 0; i < n; i++ {
			period := periods[rng.Intn(len(periods))]
			pct := int64(sliceRaw[i]%30) + 2
			cons := PeriodicConstraints(0, period, period*pct/100)
			ths = append(ths, k.Spawn("p", 0, mkPeriodic(cons)))
		}
		k.RunNs(40_000_000)
		for _, th := range ths {
			if th.IsRT() && th.Misses != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySupplyConservation: no thread is ever credited more execution
// than wall-clock time permits, and total per-CPU supply never exceeds
// elapsed wall time.
func TestPropertySupplyConservation(t *testing.T) {
	f := func(seed uint64, mix uint8) bool {
		k := testKernel(t, 2, seed, nil)
		var ths []*Thread
		ths = append(ths, k.Spawn("a", 0, mkPeriodic(PeriodicConstraints(0, 100_000, int64(mix%40+10)*1000))))
		ths = append(ths, k.Spawn("b", 0, spin(25_000)))
		ths = append(ths, k.Spawn("c", 1, spin(40_000)))
		runNs := int64(20_000_000)
		k.RunNs(runNs)
		wallCycles := int64(sim.NanosToCycles(runNs, k.M.Spec.FreqHz))
		perCPU := map[int]int64{}
		for _, th := range k.Threads() {
			if th.SupplyCycles < 0 {
				return false
			}
			perCPU[th.CPU()] += th.SupplyCycles
		}
		_ = ths
		for _, total := range perCPU {
			if total > wallCycles {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministicReplay: identical seeds produce bit-identical
// schedules regardless of workload mix.
func TestPropertyDeterministicReplay(t *testing.T) {
	f := func(seed uint64, mix uint8) bool {
		run := func() (int64, int64, uint64, int64) {
			spec := machine.PhiKNL().Scaled(3)
			m := machine.New(spec, seed)
			k := Boot(m, DefaultConfig(spec))
			a := k.Spawn("a", 1, mkPeriodic(PeriodicConstraints(0, 100_000, int64(mix%50+5)*1000)))
			b := k.SpawnStealable("b", 1, spin(30_000))
			k.PostTask(1, &Task{SizeCycles: 20_000, ActualCycles: 18_000})
			k.RunNs(15_000_000)
			return a.SupplyCycles, b.SupplyCycles, k.Eng.Steps(), a.Arrivals
		}
		a1, b1, e1, r1 := run()
		a2, b2, e2, r2 := run()
		return a1 == a2 && b1 == b2 && e1 == e2 && r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSMIStormEventuallyMisses: failure injection — SMIs so frequent and
// long that no scheduler can hide them must surface as misses (the eager
// policy mitigates, it does not perform miracles).
func TestSMIStormEventuallyMisses(t *testing.T) {
	spec := machine.PhiKNL().Scaled(1)
	spec.MeanSMIGapCycles = 200_000 // ~154us between SMIs
	spec.SMIDurationCycles = 90_000 // ~69us each: >45% of all time vanishes
	spec.SMIDurationJitter = 0
	m := machine.New(spec, 171)
	k := Boot(m, DefaultConfig(spec))
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 60_000)))
	k.RunNs(50_000_000)
	if th.Misses == 0 {
		t.Fatalf("a 45%% SMI storm cannot be absorbed; misses must appear")
	}
	// And the miss accounting must stay coherent.
	if th.Misses > th.Arrivals {
		t.Fatalf("misses (%d) exceed arrivals (%d)", th.Misses, th.Arrivals)
	}
}
