package core

// Graceful degradation (robustness layer). When faults — SMI storms, timer
// loss, interference — push an admitted task set over the edge, threads
// would otherwise miss every deadline forever: admission control ran at
// admission time and nothing revisits the verdict. The degradation layer
// closes that loop: per-thread miss-streak detection feeds a configurable
// shed policy, groups are shed atomically (Algorithm 1's all-or-nothing
// property applied in reverse), and a supervisor retries re-admission of
// shed threads under exponential backoff once conditions recover.

import "hrtsched/internal/sim"

// DegradeEvent records one shed applied to a thread.
type DegradeEvent struct {
	Policy DegradePolicy
	Streak int // miss streak that triggered the shed
	Cohort int // size of the atomically shed cohort (1 for lone threads)
	// OldCons are the original constraints, preserved across repeated sheds
	// so the re-admission supervisor restores the thread fully.
	OldCons Constraints
	NewCons Constraints
	Evicted bool // thread was parked; only re-admission or Wake revives it
	NowNs   int64
}

// DegradeStats aggregates the degradation layer's activity on a kernel.
type DegradeStats struct {
	Sheds           int64 // threads shed (cohort members counted singly)
	Cohorts         int64 // shed operations (a whole group counts once)
	Demoted         int64
	Shrunk          int64
	Evicted         int64
	ReadmitAttempts int64
	Readmitted      int64
	ReadmitGaveUp   int64
}

// Degradation returns the kernel-wide degradation counters.
func (k *Kernel) Degradation() DegradeStats { return k.degradeStats }

// applyDegrade runs inside a scheduler pass, after queue state has been
// brought current: any periodic thread whose miss streak crossed the
// threshold is shed together with its group cohort.
func (s *LocalScheduler) applyDegrade(nowNs int64) {
	thr := s.cfg.Degrade.streak()
	var victims []*Thread
	collect := func(t *Thread) {
		if t.cons.Type == Periodic && t.missStreak >= thr {
			victims = append(victims, t)
		}
	}
	// Collect first, mutate after: the heaps must not change mid-iteration.
	s.rtq.All(collect)
	s.pending.All(collect)
	if c := s.current; c != nil && c.state == Running {
		collect(c)
	}
	for _, t := range victims {
		// An earlier victim's cohort may have already shed this one.
		if t.state == Exited || t.cons.Type != Periodic || t.missStreak < thr {
			continue
		}
		s.k.shedCohort(t, nowNs)
	}
}

// shedCohort sheds t and, when a group resolver is installed, every member
// of t's group — atomically: one policy, applied to all members in one
// step, so a group is never left partially real-time (Section 4's
// admission is all-or-nothing; so is its revocation).
func (k *Kernel) shedCohort(t *Thread, nowNs int64) {
	dc := k.Cfg.Degrade
	cohort := []*Thread{t}
	if k.GroupResolver != nil {
		if ms := k.GroupResolver(t); len(ms) > 0 {
			cohort = ms
		}
	}
	policy := dc.Policy
	if policy == DegradeShrink {
		// Shrink only if every member stays above the slice floor;
		// otherwise demote the whole cohort so it stays uniform.
		for _, m := range cohort {
			if m.state == Exited || m.cons.Type != Periodic {
				continue
			}
			s := k.Locals[m.cpu]
			floor := dc.MinSliceNs
			if floor <= 0 {
				floor = s.cfg.Limits.MinSliceNs
			}
			if m.cons.SliceNs*dc.shrinkPct()/100 < floor {
				policy = DegradeDemote
				break
			}
		}
	}
	shedAny := false
	for _, m := range cohort {
		if m.state == Exited || m.cons.Type != Periodic {
			continue
		}
		k.Locals[m.cpu].degradeOne(m, nowNs, len(cohort), policy)
		shedAny = true
	}
	if !shedAny {
		return
	}
	k.degradeStats.Cohorts++
	if dc.Readmit {
		// Backoff compounds across flaps: a thread that gets re-admitted
		// and then shed again restarts at its lifetime shed count, so a
		// persistent fault eventually parks it for good instead of letting
		// it flap forever.
		attempt := t.shedCount - 1
		if attempt >= dc.maxAttempts() {
			k.degradeStats.ReadmitGaveUp++
		} else {
			k.scheduleReadmit(t, attempt)
		}
	}
}

// degradeOne applies policy to one periodic thread on its own scheduler.
func (s *LocalScheduler) degradeOne(t *Thread, nowNs int64, cohort int, policy DegradePolicy) {
	dc := s.cfg.Degrade
	old := t.cons
	orig := old
	if t.degraded {
		orig = t.lastDegrade.OldCons
	}
	ev := DegradeEvent{Policy: policy, Streak: t.missStreak, Cohort: cohort,
		OldCons: orig, NowNs: nowNs}

	switch policy {
	case DegradeShrink:
		cons := old
		cons.SliceNs = old.SliceNs * dc.shrinkPct() / 100
		s.periodicUtil -= old.Utilization()
		if s.periodicUtil < 0 {
			s.periodicUtil = 0
		}
		t.cons = cons
		s.periodicUtil += cons.Utilization()
		if max := s.clock.NanosToCycles(cons.SliceNs); t.sliceRemCycles > max {
			t.sliceRemCycles = max
		}
		t.debtCycles = 0
		s.k.degradeStats.Shrunk++
		ev.NewCons = cons
	case DegradeDemote, DegradeEvict:
		s.periodicUtil -= old.Utilization()
		if s.periodicUtil < 0 {
			s.periodicUtil = 0
		}
		if s.rtq.Contains(t) {
			s.rtq.Remove(t)
		} else if s.pending.Contains(t) {
			s.pending.Remove(t)
		}
		t.cons = AperiodicConstraints(old.Priority)
		t.debtCycles = 0
		t.sliceRemCycles = 0
		switch {
		case t == s.current && t.state == Running:
			// The running thread keeps the CPU as an aperiodic thread;
			// eviction of a running thread falls back to demotion (it can
			// only park at its next own action).
			s.quantumEndNs = nowNs + s.cfg.AperiodicQuantumNs
		case policy == DegradeEvict:
			if t.state != Blocked && t.state != Sleeping {
				t.state = Blocked
			}
			ev.Evicted = true
		default:
			if t.state == RunnableRT || t.state == PendingArrival {
				t.state = RunnableAper
				s.rrCounter++
				t.rrSeq = s.rrCounter
				s.mustPush(s.aperq, t)
			}
			// Blocked or sleeping threads just carry the new class.
		}
		if policy == DegradeEvict {
			s.k.degradeStats.Evicted++
		} else {
			s.k.degradeStats.Demoted++
		}
		ev.NewCons = t.cons
	default:
		return
	}
	t.missStreak = 0
	t.degraded = true
	t.shedCount++
	t.lastDegrade = ev
	s.k.degradeStats.Sheds++
	if s.k.Hooks.Degrade != nil {
		s.k.Hooks.Degrade(s.cpu.ID(), t, ev)
	}
	s.k.Kick(s.cpu.ID())
}

// scheduleReadmit arms the re-admission supervisor for the cohort anchored
// at t: attempt k fires after base << k, base defaulting to four of the
// thread's original periods.
func (k *Kernel) scheduleReadmit(t *Thread, attempt int) {
	dc := k.Cfg.Degrade
	base := dc.ReadmitAfterNs
	if base <= 0 {
		base = 4 * t.lastDegrade.OldCons.PeriodNs
	}
	if base <= 0 {
		base = 100_000_000
	}
	shift := uint(attempt)
	if shift > 16 {
		shift = 16
	}
	s := k.Locals[t.cpu]
	delay := s.clock.NanosToCycles(base << shift)
	if delay < 1 {
		delay = 1
	}
	k.Eng.After(sim.Duration(delay), sim.Hard, func(now sim.Time) {
		k.tryReadmit(t, attempt)
	})
}

// tryReadmit attempts to restore the shed cohort to its original
// constraints, all-or-nothing: members are admitted sequentially and every
// installed member is rolled back to its shed state if any later member is
// rejected. On failure the supervisor backs off exponentially up to the
// configured attempt bound.
func (k *Kernel) tryReadmit(t *Thread, attempt int) {
	dc := k.Cfg.Degrade
	if t.state == Exited || !t.degraded {
		return
	}
	k.degradeStats.ReadmitAttempts++
	retry := func() {
		if attempt+1 >= dc.maxAttempts() {
			k.degradeStats.ReadmitGaveUp++
			return
		}
		k.scheduleReadmit(t, attempt+1)
	}
	cohort := []*Thread{t}
	if k.GroupResolver != nil {
		if ms := k.GroupResolver(t); len(ms) > 0 {
			cohort = ms
		}
	}
	var members []*Thread
	for _, m := range cohort {
		if m.state == Exited || !m.degraded {
			continue
		}
		switch m.state {
		case Running, Sleeping:
			// Never reshape a thread that is on a CPU or owns a wake event;
			// the whole cohort waits for a quieter moment.
			retry()
			return
		case Blocked:
			if !m.lastDegrade.Evicted {
				// Blocked for its own reasons (a barrier, say): forcing an
				// arrival would fabricate a spurious wakeup.
				retry()
				return
			}
		}
		members = append(members, m)
	}
	if len(members) == 0 {
		return
	}
	var installed []*Thread
	ok := true
	for _, m := range members {
		s := k.Locals[m.cpu]
		prev := m.state
		s.detachQueued(m)
		if err := s.Admit(m, m.lastDegrade.OldCons, s.nowNs(0)); err != nil {
			// Admit left constraints and reservations untouched on failure;
			// just put the thread back where it was.
			s.reattachQueued(m, prev)
			ok = false
			break
		}
		m.state = PendingArrival
		s.mustPush(s.pending, m)
		installed = append(installed, m)
	}
	if !ok {
		for _, m := range installed {
			s := k.Locals[m.cpu]
			s.pending.Remove(m)
			// Re-admitting the shed constraints releases the just-restored
			// reservation for something strictly smaller, so it cannot fail.
			if err := s.Admit(m, m.lastDegrade.NewCons, s.nowNs(0)); err != nil {
				panic("core: rollback to shed constraints rejected: " + err.Error())
			}
			switch {
			case m.lastDegrade.NewCons.Type == Periodic:
				m.state = PendingArrival
				s.mustPush(s.pending, m)
			case m.lastDegrade.Evicted:
				m.state = Blocked
			default:
				m.state = RunnableAper
				s.rrCounter++
				m.rrSeq = s.rrCounter
				s.mustPush(s.aperq, m)
			}
		}
		retry()
		return
	}
	for _, m := range installed {
		m.degraded = false
		m.missStreak = 0
		k.degradeStats.Readmitted++
		if k.Hooks.Readmit != nil {
			k.Hooks.Readmit(m.cpu, m, k.Locals[m.cpu].nowNs(0))
		}
		k.Kick(m.cpu)
	}
}

// detachQueued removes t from whichever run queue holds it, if any.
func (s *LocalScheduler) detachQueued(t *Thread) {
	switch {
	case s.rtq.Contains(t):
		s.rtq.Remove(t)
	case s.pending.Contains(t):
		s.pending.Remove(t)
	case s.aperq.Contains(t):
		s.aperq.Remove(t)
	}
}

// reattachQueued undoes detachQueued for a thread whose state is unchanged.
func (s *LocalScheduler) reattachQueued(t *Thread, state ThreadState) {
	switch state {
	case RunnableRT:
		s.mustPush(s.rtq, t)
	case PendingArrival:
		s.mustPush(s.pending, t)
	case RunnableAper:
		s.mustPush(s.aperq, t)
	}
}
