package core

import "testing"

func TestStealSpreadsImbalance(t *testing.T) {
	k := testKernel(t, 4, 71, nil)
	done := 0
	const jobs = 8
	for i := 0; i < jobs; i++ {
		th := k.SpawnStealable("job", 0, Seq(Compute{Cycles: 2_000_000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == jobs }, 1<<24)
	var steals int64
	executedElsewhere := false
	for cpu, ls := range k.Locals {
		steals += ls.Stats.Steals
		if cpu != 0 && ls.Stats.Switches > 1 {
			executedElsewhere = true
		}
	}
	if steals == 0 || !executedElsewhere {
		t.Fatalf("no stealing happened (steals=%d)", steals)
	}
	// Stolen threads migrated: some job must have finished off CPU 0.
	migrated := false
	for _, th := range k.Threads() {
		if th.Name() == "job" && th.CPU() != 0 {
			migrated = true
		}
	}
	if !migrated {
		t.Fatalf("no thread migrated")
	}
}

func TestNonStealableStaysPut(t *testing.T) {
	k := testKernel(t, 4, 72, nil)
	done := 0
	for i := 0; i < 6; i++ {
		th := k.Spawn("pinned", 0, Seq(Compute{Cycles: 1_000_000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == 6 }, 1<<24)
	for _, th := range k.Threads() {
		if th.Name() == "pinned" && th.CPU() != 0 {
			t.Fatalf("non-stealable thread migrated to CPU %d", th.CPU())
		}
	}
	var steals int64
	for _, ls := range k.Locals {
		steals += ls.Stats.Steals
	}
	if steals != 0 {
		t.Fatalf("steals of non-stealable threads: %d", steals)
	}
}

func TestRTThreadsNeverStolen(t *testing.T) {
	// Only aperiodic threads can be moved between local schedulers
	// (Section 3.4) — this is what keeps distributed admission unnecessary.
	k := testKernel(t, 2, 73, nil)
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 30_000)))
	k.RunNs(50_000_000)
	if th.CPU() != 0 {
		t.Fatalf("RT thread migrated")
	}
	if th.Misses != 0 {
		t.Fatalf("misses: %d", th.Misses)
	}
}

func TestStealOffPolicy(t *testing.T) {
	k := testKernel(t, 4, 74, func(c *Config) { c.Steal = StealOff })
	done := 0
	for i := 0; i < 4; i++ {
		th := k.SpawnStealable("job", 0, Seq(Compute{Cycles: 500_000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == 4 }, 1<<24)
	for _, ls := range k.Locals {
		if ls.Stats.StealAttempts != 0 {
			t.Fatalf("steal attempts with stealing off")
		}
	}
}

func TestLinearStealPolicy(t *testing.T) {
	k := testKernel(t, 4, 75, func(c *Config) { c.Steal = StealLinear })
	done := 0
	const jobs = 8
	for i := 0; i < jobs; i++ {
		th := k.SpawnStealable("job", 0, Seq(Compute{Cycles: 2_000_000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == jobs }, 1<<24)
	var steals int64
	for _, ls := range k.Locals {
		steals += ls.Stats.Steals
	}
	if steals == 0 {
		t.Fatalf("linear policy never stole")
	}
}

func TestStealFasterThanNoSteal(t *testing.T) {
	run := func(p StealPolicy) int64 {
		k := testKernel(t, 4, 76, func(c *Config) { c.Steal = p })
		done := 0
		for i := 0; i < 12; i++ {
			th := k.SpawnStealable("job", 0, Seq(Compute{Cycles: 1_000_000}))
			th.OnExit = func(*Thread) { done++ }
		}
		k.RunUntil(func() bool { return done == 12 }, 1<<24)
		return k.NowNs()
	}
	with := run(StealPowerOfTwo)
	without := run(StealOff)
	if without < 2*with {
		t.Fatalf("stealing gave no speedup: with=%dns without=%dns", with, without)
	}
}
