package core

import (
	"testing"

	"hrtsched/internal/machine"
)

// BenchmarkSchedulerSteadyState measures simulated-time progress rate for
// one periodic thread: how much host time one simulated scheduling period
// costs (two invocations, one dispatch cycle).
func BenchmarkSchedulerSteadyState(b *testing.B) {
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 1)
	k := Boot(m, DefaultConfig(spec))
	k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 50_000)))
	k.RunNs(1_000_000) // settle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunNs(100_000) // one period of simulated time
	}
}

// BenchmarkEightCPUNode measures a busier node: 8 CPUs, one RT thread and
// one background thread each.
func BenchmarkEightCPUNode(b *testing.B) {
	spec := machine.PhiKNL().Scaled(8)
	m := machine.New(spec, 2)
	k := Boot(m, DefaultConfig(spec))
	for i := 0; i < 8; i++ {
		k.Spawn("rt", i, mkPeriodic(PeriodicConstraints(0, 100_000, 40_000)))
		k.Spawn("bg", i, spin(30_000))
	}
	k.RunNs(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunNs(100_000)
	}
}

// BenchmarkThreadHeap measures the fixed-capacity priority queue.
func BenchmarkThreadHeap(b *testing.B) {
	h := newThreadHeap(1024, byDeadline)
	ths := make([]*Thread, 256)
	for i := range ths {
		ths[i] = mkThread(i, 0, int64(i*37%1009), 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := ths[i%256]
		t.deadlineNs = int64(i % 4096)
		_ = h.Push(t)
		if h.Len() >= 200 {
			for h.Len() > 0 {
				h.Pop()
			}
		}
	}
}

// BenchmarkSpawnExitWithPool measures the thread pool's reanimation path.
func BenchmarkSpawnExitWithPool(b *testing.B) {
	spec := machine.PhiKNL().Scaled(1)
	m := machine.New(spec, 3)
	k := Boot(m, DefaultConfig(spec))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th := k.Spawn("churn", 0, Seq(Compute{Cycles: 1000}))
		k.RunUntil(func() bool { return th.State() == Exited }, 1<<20)
	}
}
