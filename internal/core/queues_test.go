package core

import (
	"sort"
	"testing"
	"testing/quick"
)

func mkThread(id int, arrival, deadline int64, prio uint32, seq uint64) *Thread {
	return &Thread{
		id:         id,
		arrivalNs:  arrival,
		deadlineNs: deadline,
		cons:       Constraints{Type: Aperiodic, Priority: prio},
		rrSeq:      seq,
		qIdx:       -1,
	}
}

func TestHeapPushPopOrder(t *testing.T) {
	h := newThreadHeap(16, byDeadline)
	deadlines := []int64{50, 10, 30, 20, 40}
	for i, d := range deadlines {
		if err := h.Push(mkThread(i, 0, d, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	for h.Len() > 0 {
		got = append(got, h.Pop().deadlineNs)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("pop order: %v", got)
	}
}

func TestHeapCapacityBound(t *testing.T) {
	h := newThreadHeap(2, byDeadline)
	_ = h.Push(mkThread(0, 0, 1, 0, 0))
	_ = h.Push(mkThread(1, 0, 2, 0, 0))
	if err := h.Push(mkThread(2, 0, 3, 0, 0)); err != ErrTooManyThreads {
		t.Fatalf("capacity not enforced: %v", err)
	}
}

func TestHeapRemoveArbitrary(t *testing.T) {
	h := newThreadHeap(16, byDeadline)
	ths := make([]*Thread, 8)
	for i := range ths {
		ths[i] = mkThread(i, 0, int64(8-i), 0, 0)
		_ = h.Push(ths[i])
	}
	h.Remove(ths[3])
	h.Remove(ths[7])
	if h.Contains(ths[3]) || h.Contains(ths[7]) {
		t.Fatalf("removed threads still present")
	}
	var got []int64
	for h.Len() > 0 {
		got = append(got, h.Pop().deadlineNs)
	}
	want := []int64{2, 3, 4, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after removal: %v, want %v", got, want)
		}
	}
}

func TestHeapRemoveAbsentPanics(t *testing.T) {
	h := newThreadHeap(4, byDeadline)
	th := mkThread(0, 0, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic removing absent thread")
		}
	}()
	h.Remove(th)
}

func TestHeapFixAfterKeyChange(t *testing.T) {
	h := newThreadHeap(8, byDeadline)
	ths := make([]*Thread, 4)
	for i := range ths {
		ths[i] = mkThread(i, 0, int64(i+1)*10, 0, 0)
		_ = h.Push(ths[i])
	}
	ths[3].deadlineNs = 1 // was 40, now the minimum
	h.Fix(ths[3])
	if h.Peek() != ths[3] {
		t.Fatalf("Fix did not restore heap order")
	}
}

func TestAperiodicOrdering(t *testing.T) {
	h := newThreadHeap(8, byPriorityRR)
	hi := mkThread(0, 0, 0, 10, 5)
	lo := mkThread(1, 0, 0, 20, 1)
	sameEarly := mkThread(2, 0, 0, 10, 2)
	_ = h.Push(hi)
	_ = h.Push(lo)
	_ = h.Push(sameEarly)
	if h.Pop() != sameEarly { // same priority as hi, earlier rrSeq
		t.Fatalf("round-robin within priority broken")
	}
	if h.Pop() != hi {
		t.Fatalf("priority ordering broken")
	}
	if h.Pop() != lo {
		t.Fatalf("lower priority should come last")
	}
}

// Property: for any sequence of pushes and removes, the heap pops in
// nondecreasing key order and never loses or duplicates a thread.
func TestPropertyHeapIsPriorityQueue(t *testing.T) {
	f := func(keys []uint16, removeMask []bool) bool {
		if len(keys) > 64 {
			keys = keys[:64]
		}
		h := newThreadHeap(64, byDeadline)
		ths := make([]*Thread, len(keys))
		for i, k := range keys {
			ths[i] = mkThread(i, 0, int64(k), 0, 0)
			if h.Push(ths[i]) != nil {
				return false
			}
		}
		removed := map[int]bool{}
		for i, th := range ths {
			if i < len(removeMask) && removeMask[i] {
				h.Remove(th)
				removed[i] = true
			}
		}
		var got []int64
		for h.Len() > 0 {
			got = append(got, h.Pop().deadlineNs)
		}
		var want []int64
		for i, k := range keys {
			if !removed[i] {
				want = append(want, int64(k))
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap invariant (parent <= child) holds after any mixed
// operation sequence.
func TestPropertyHeapInvariant(t *testing.T) {
	f := func(ops []int16) bool {
		h := newThreadHeap(128, byArrival)
		id := 0
		var live []*Thread
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				th := mkThread(id, int64(op), 0, 0, 0)
				id++
				if h.Push(th) != nil {
					return true // capacity reached; fine
				}
				live = append(live, th)
			} else {
				k := int(uint16(op)) % len(live)
				h.Remove(live[k])
				live = append(live[:k], live[k+1:]...)
			}
			for i := 1; i < h.Len(); i++ {
				parent := (i - 1) / 2
				if h.less(h.items[i], h.items[parent]) {
					return false
				}
				if h.items[i].qIdx != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
