package core

// Hooks are optional instrumentation callbacks fired by the local
// schedulers. They run synchronously inside the simulation and must not
// mutate scheduler state; the trace package is the canonical consumer.
type Hooks struct {
	// SwitchIn fires when a thread is dispatched on a CPU.
	SwitchIn func(cpu int, t *Thread, nowNs int64)
	// SwitchOut fires when a thread stops being the current thread of a
	// CPU (preempted, blocked, slept, exited, or slice-complete).
	SwitchOut func(cpu int, t *Thread, nowNs int64)
	// Arrival fires when a real-time thread's arrival is pumped into the
	// run queue.
	Arrival func(cpu int, t *Thread, nowNs int64)
	// Miss fires when a deadline miss's magnitude becomes known (the
	// leftover completes or is abandoned).
	Miss func(cpu int, t *Thread, nowNs int64, missNs int64)
	// DeviceIRQ fires when an external device interrupt is handled.
	DeviceIRQ func(cpu int, vector uint8, nowNs int64)
	// Pass fires at the end of every scheduler pass, after the next thread
	// has been chosen but before the dispatch completes. The InvariantChecker
	// is the canonical consumer.
	Pass func(cpu int, s *LocalScheduler, nowNs int64)
	// Degrade fires when the graceful-degradation layer sheds a thread
	// (demotes, shrinks, or evicts it).
	Degrade func(cpu int, t *Thread, ev DegradeEvent)
	// Readmit fires when the re-admission supervisor restores a previously
	// shed thread to its original constraints.
	Readmit func(cpu int, t *Thread, nowNs int64)
}
