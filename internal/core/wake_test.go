package core

import (
	"strings"
	"testing"
)

// TestMidPeriodWakeDoesNotFabricateMisses is the regression test for the
// blocked-thread wake semantics: a periodic thread that blocks and wakes
// late in its period must not be charged a miss for slice it waived while
// blocked.
func TestMidPeriodWakeDoesNotFabricateMisses(t *testing.T) {
	k := testKernel(t, 1, 251, nil)
	// 200us period, 60us slice; the thread blocks for ~170us every period,
	// waking with only ~30us left — less than its slice.
	admitted := false
	phase := 0
	th := k.Spawn("blocky", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			return ChangeConstraints{C: PeriodicConstraints(0, 200_000, 60_000)}
		}
		phase++
		if phase%2 == 1 {
			return Compute{Cycles: 13_000} // 10us of work
		}
		// Sleep deep into the period.
		return SleepUntil{WallNs: tc.NowNs + 170_000}
	}))
	k.RunNs(50_000_000)
	if !th.IsRT() {
		t.Fatalf("not admitted")
	}
	if th.Misses != 0 {
		t.Fatalf("fabricated %d misses for a voluntarily blocking thread", th.Misses)
	}
	if th.Arrivals < 100 {
		t.Fatalf("arrivals = %d", th.Arrivals)
	}
}

func TestWakeVeryNearDeadlineDefersToNextPeriod(t *testing.T) {
	k := testKernel(t, 1, 252, nil)
	admitted := false
	phase := 0
	th := k.Spawn("edge", 0, ProgramFunc(func(tc *ThreadCtx) Action {
		if !admitted {
			admitted = true
			return ChangeConstraints{C: PeriodicConstraints(0, 200_000, 60_000)}
		}
		phase++
		if phase%2 == 1 {
			return Compute{Cycles: 1_000}
		}
		// Wake within the last few microseconds of the period: the wake
		// path must defer the thread to its next arrival rather than
		// committing to an impossible sliver.
		next := (tc.NowNs/200_000 + 1) * 200_000
		return SleepUntil{WallNs: next - 2_000}
	}))
	k.RunNs(40_000_000)
	if th.Misses != 0 {
		t.Fatalf("boundary wakes produced %d misses", th.Misses)
	}
	if th.SupplyCycles == 0 {
		t.Fatalf("thread starved")
	}
}

func TestConstraintAndStateStrings(t *testing.T) {
	for _, c := range []struct {
		got, want string
	}{
		{Aperiodic.String(), "aperiodic"},
		{Periodic.String(), "periodic"},
		{Sporadic.String(), "sporadic"},
		{ConstraintType(9).String(), "ConstraintType(9)"},
		{Embryo.String(), "embryo"},
		{Running.String(), "running"},
		{Exited.String(), "exited"},
		{ThreadState(99).String(), "ThreadState(99)"},
	} {
		if c.got != c.want {
			t.Fatalf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestValidateTable(t *testing.T) {
	limits := &Limits{MinPeriodNs: 10_000, MinSliceNs: 1_000}
	cases := []struct {
		c    Constraints
		ok   bool
		frag string
	}{
		{AperiodicConstraints(5), true, ""},
		{PeriodicConstraints(0, 100_000, 50_000), true, ""},
		{PeriodicConstraints(-1, 100_000, 50_000), false, "periodic"},
		{PeriodicConstraints(0, 0, 0), false, "periodic"},
		{PeriodicConstraints(0, 100_000, 200_000), false, "periodic"},
		{PeriodicConstraints(0, 5_000, 2_000), false, "minimum"},
		{PeriodicConstraints(0, 100_000, 500), false, "minimum"},
		{SporadicConstraints(0, 10_000, 100_000, 5), true, ""},
		{SporadicConstraints(0, 0, 100_000, 5), false, "sporadic"},
		{SporadicConstraints(0, 200_000, 100_000, 5), false, "sporadic"},
		{SporadicConstraints(0, 500, 100_000, 5), false, "minimum"},
		{Constraints{Type: ConstraintType(7)}, false, "unknown"},
	}
	for i, tc := range cases {
		err := tc.c.Validate(limits)
		if tc.ok && err != nil {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
		if !tc.ok {
			if err == nil {
				t.Fatalf("case %d: invalid constraints accepted", i)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("case %d: error %q missing %q", i, err, tc.frag)
			}
		}
	}
	// Utilization sanity.
	if u := PeriodicConstraints(0, 100, 50).Utilization(); u != 0.5 {
		t.Fatalf("periodic utilization %v", u)
	}
	if u := SporadicConstraints(0, 10, 100, 1).Utilization(); u != 0.1 {
		t.Fatalf("sporadic utilization %v", u)
	}
	if u := AperiodicConstraints(1).Utilization(); u != 0 {
		t.Fatalf("aperiodic utilization %v", u)
	}
}

func TestRunUntilNsAndNowNs(t *testing.T) {
	k := testKernel(t, 1, 253, nil)
	k.Spawn("bg", 0, spin(10_000))
	k.RunUntilNs(5_000_000)
	now := k.NowNs()
	if now < 4_900_000 || now > 5_100_000 {
		t.Fatalf("NowNs = %d after RunUntilNs(5ms)", now)
	}
}

func TestScopeHookPins(t *testing.T) {
	k := testKernel(t, 1, 254, nil)
	th := k.Spawn("rt", 0, mkPeriodic(PeriodicConstraints(0, 100_000, 50_000)))
	k.SetScope(&ScopeHook{CPU: 0, Thread: th})
	k.RunNs(5_000_000)
	g := k.M.GPIO
	if len(g.PinEdges(0)) < 40 {
		t.Fatalf("thread pin edges: %d", len(g.PinEdges(0)))
	}
	if len(g.PinEdges(1)) < 80 {
		t.Fatalf("scheduler pin edges: %d", len(g.PinEdges(1)))
	}
	if len(g.PinEdges(2)) < 80 {
		t.Fatalf("interrupt pin edges: %d", len(g.PinEdges(2)))
	}
	// Clearing the hook stops recording.
	k.SetScope(nil)
	n := len(g.Edges())
	k.RunNs(2_000_000)
	if len(g.Edges()) != n {
		t.Fatalf("edges recorded after hook cleared")
	}
}
