package core

// Thread pool maintenance — the paper's "thread reaping/reanimation"
// (Section 3.4): exited threads' TCB+stack allocations are reaped into a
// bounded pool and reanimated for subsequent spawns, skipping the memory
// substrate entirely on the hot path. This is one of the streamlined
// primitives that make Nautilus thread management "orders of magnitude
// faster" than user-level threading (Section 2), and one of the few
// operations that may briefly take another local scheduler's lock.

// poolCapacity bounds the reap pool (a compile-time constant in the real
// kernel).
const poolCapacity = 256

// PoolStats reports thread-pool behaviour.
type PoolStats struct {
	Reaped     int64 // exits whose stack went to the pool
	Reanimated int64 // spawns served from the pool
	Released   int64 // exits that overflowed the pool back to the allocator
}

// reapStack recycles an exiting thread's stack, or frees it if the pool is
// full.
func (k *Kernel) reapStack(addr uint64) {
	if addr == 0 {
		return
	}
	if len(k.stackPool) < poolCapacity {
		k.stackPool = append(k.stackPool, addr)
		k.poolStats.Reaped++
		return
	}
	_ = k.Mem.Free(addr)
	k.poolStats.Released++
}

// reanimateStack serves a spawn from the pool when possible; ok is false
// when the pool is empty and the caller must hit the allocator.
func (k *Kernel) reanimateStack() (addr uint64, ok bool) {
	n := len(k.stackPool)
	if n == 0 {
		return 0, false
	}
	addr = k.stackPool[n-1]
	k.stackPool = k.stackPool[:n-1]
	k.poolStats.Reanimated++
	return addr, true
}

// PoolStats returns a copy of the thread pool counters.
func (k *Kernel) PoolStats() PoolStats { return k.poolStats }

// DrainPool releases every pooled stack back to the memory substrate
// (e.g. under memory pressure). It returns the number released.
func (k *Kernel) DrainPool() int {
	n := len(k.stackPool)
	for _, addr := range k.stackPool {
		_ = k.Mem.Free(addr)
	}
	k.stackPool = k.stackPool[:0]
	return n
}
