package core

import (
	"fmt"

	"hrtsched/internal/stats"
)

// ThreadState is the lifecycle state of a thread.
type ThreadState uint8

const (
	// Embryo: created, not yet started.
	Embryo ThreadState = iota
	// PendingArrival: real-time thread waiting for its next arrival time.
	PendingArrival
	// RunnableRT: in the real-time run queue (EDF order).
	RunnableRT
	// RunnableAper: in the non-real-time run queue.
	RunnableAper
	// Running: currently executing on its CPU.
	Running
	// Blocked: parked until woken (barrier, explicit block).
	Blocked
	// Sleeping: parked until a wall-clock time.
	Sleeping
	// Exited: finished.
	Exited
)

// String names the state.
func (s ThreadState) String() string {
	switch s {
	case Embryo:
		return "embryo"
	case PendingArrival:
		return "pending"
	case RunnableRT:
		return "runnable-rt"
	case RunnableAper:
		return "runnable-aper"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Sleeping:
		return "sleeping"
	case Exited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", uint8(s))
	}
}

// Thread is a kernel thread: a program, a CPU binding, timing constraints,
// and the per-arrival real-time accounting the local scheduler maintains.
// Essential thread state lives with its CPU's scheduler, as in Nautilus.
type Thread struct {
	id   int
	name string
	k    *Kernel
	cpu  int
	prog Program

	state ThreadState
	cons  Constraints

	// Real-time schedule state. All wall-clock values are nanoseconds.
	admitNs        int64 // Gamma: when the current constraints took effect
	arrivalNs      int64 // current (or next, while pending) arrival
	deadlineNs     int64 // deadline of the current arrival
	sliceRemCycles int64 // execution still owed for the current arrival
	debtCycles     int64 // leftover owed from a missed previous arrival
	missDeadlineNs int64 // the deadline that leftover missed
	periodIndex    int64 // arrivals so far under the current constraints

	// Aperiodic round-robin position: threads with equal priority rotate
	// by increasing rrSeq.
	rrSeq uint64

	// Current program action.
	cur          Action
	curRemCycles int64

	// Queue bookkeeping (fixed-size priority queues index by position).
	qIdx int

	// Statistics.
	Arrivals     int64
	Misses       int64
	MissTimeNs   stats.Summary
	SupplyCycles int64
	Switches     int64
	Preemptions  int64

	// Graceful-degradation state: consecutive missed deadlines since the
	// last cleanly met one, and the record of the last shed applied.
	missStreak  int
	lastDegrade DegradeEvent
	degraded    bool
	shedCount   int // lifetime sheds; drives cross-flap readmit backoff

	// Stealable marks aperiodic threads eligible for work stealing.
	Stealable bool

	// OnExit, if non-nil, runs (in simulation context) when the thread
	// exits.
	OnExit func(t *Thread)

	// groupData is an opaque slot for the group package.
	groupData any

	// Most recent admission verdict, surfaced through ThreadCtx.
	admitOK  bool
	admitErr error

	// stackAddr is the thread's TCB+stack allocation in the NUMA substrate,
	// freed on exit (or recycled through the thread pool).
	stackAddr uint64
}

// StackAddr returns the simulated address of the thread's TCB+stack block.
func (t *Thread) StackAddr() uint64 { return t.stackAddr }

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's human-readable name.
func (t *Thread) Name() string { return t.name }

// CPU returns the CPU the thread is currently bound to.
func (t *Thread) CPU() int { return t.cpu }

// State returns the lifecycle state.
func (t *Thread) State() ThreadState { return t.state }

// Constraints returns the thread's current timing constraints.
func (t *Thread) Constraints() Constraints { return t.cons }

// IsRT reports whether the thread currently holds a periodic or sporadic
// constraint.
func (t *Thread) IsRT() bool {
	return t.cons.Type == Periodic || (t.cons.Type == Sporadic && t.sporadicActive())
}

// sporadicActive reports whether a sporadic thread still owes its burst.
func (t *Thread) sporadicActive() bool {
	return t.cons.Type == Sporadic && (t.sliceRemCycles > 0 || t.state == PendingArrival)
}

// GroupData returns the slot reserved for the group package.
func (t *Thread) GroupData() any { return t.groupData }

// SetGroupData stores into the slot reserved for the group package.
func (t *Thread) SetGroupData(v any) { t.groupData = v }

// DeadlineNs returns the current deadline (valid while RT and arrived).
func (t *Thread) DeadlineNs() int64 { return t.deadlineNs }

// ArrivalNs returns the current/next arrival time.
func (t *Thread) ArrivalNs() int64 { return t.arrivalNs }

// AdmitNs returns Gamma, the admission time of the current constraints.
func (t *Thread) AdmitNs() int64 { return t.admitNs }

// SliceRemainingCycles returns the execution still owed this arrival.
func (t *Thread) SliceRemainingCycles() int64 { return t.sliceRemCycles }

// MissStreak returns the number of consecutive deadlines missed since the
// last cleanly completed slice.
func (t *Thread) MissStreak() int { return t.missStreak }

// Degraded reports whether the degradation layer has shed this thread, and
// if so returns the most recent shed event.
func (t *Thread) Degraded() (DegradeEvent, bool) { return t.lastDegrade, t.degraded }

// MissRate returns Misses/Arrivals, or 0 before the first arrival.
func (t *Thread) MissRate() float64 {
	if t.Arrivals == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Arrivals)
}

// resetSchedule installs cons with admission time gammaNs and computes the
// first arrival. Called under the local scheduler.
func (t *Thread) resetSchedule(cons Constraints, gammaNs int64, nsToCycles func(int64) int64) {
	t.cons = cons
	t.admitNs = gammaNs
	t.periodIndex = 0
	t.debtCycles = 0
	t.missDeadlineNs = 0
	t.missStreak = 0
	switch cons.Type {
	case Periodic:
		t.arrivalNs = gammaNs + cons.PhaseNs
		t.deadlineNs = t.arrivalNs + cons.PeriodNs
		t.sliceRemCycles = nsToCycles(cons.SliceNs)
	case Sporadic:
		t.arrivalNs = gammaNs + cons.PhaseNs
		t.deadlineNs = gammaNs + cons.DeadlineNs
		t.sliceRemCycles = nsToCycles(cons.SizeNs)
	default:
		t.arrivalNs = 0
		t.deadlineNs = 0
		t.sliceRemCycles = 0
	}
}

// advancePeriod rolls a periodic thread to the arrival after nowNs,
// recording misses for any deadline that passed unserved. Returns the
// number of deadlines that were missed in the roll.
func (t *Thread) advancePeriod(nowNs int64, nsToCycles func(int64) int64, record func(missNs int64)) int {
	if t.cons.Type != Periodic {
		return 0
	}
	missed := 0
	for t.deadlineNs <= nowNs {
		// A previous miss whose leftover never completed within the extra
		// period: account its miss time as one full period (capped).
		if t.debtCycles > 0 {
			record(nowNs - t.missDeadlineNs)
			t.Misses++
			t.missStreak++
			t.debtCycles = 0
			missed++
		} else if t.sliceRemCycles > 0 && t.Arrivals > 0 {
			// The arrival that just ended did not get its slice: miss. The
			// leftover becomes debt; its completion time determines the
			// miss time (Figures 8 and 9).
			t.Misses++
			t.missStreak++
			t.debtCycles = t.sliceRemCycles
			t.missDeadlineNs = t.deadlineNs
			missed++
		}
		t.arrivalNs = t.deadlineNs
		t.deadlineNs += t.cons.PeriodNs
		t.sliceRemCycles = nsToCycles(t.cons.SliceNs)
		t.periodIndex++
		t.Arrivals++
	}
	return missed
}

// supply grants the thread's real-time accounting executed cycles, paying
// down miss debt first. It returns true if the current arrival's slice just
// completed. Total execution (SupplyCycles) is tracked by the scheduler's
// accountCurrent, not here.
func (t *Thread) supply(cycles int64, nowNs int64, record func(missNs int64)) bool {
	if t.debtCycles > 0 {
		pay := cycles
		if pay > t.debtCycles {
			pay = t.debtCycles
		}
		t.debtCycles -= pay
		cycles -= pay
		if t.debtCycles == 0 {
			record(nowNs - t.missDeadlineNs)
		}
	}
	if cycles <= 0 {
		return false
	}
	before := t.sliceRemCycles
	t.sliceRemCycles -= cycles
	if t.sliceRemCycles < 0 {
		t.sliceRemCycles = 0
	}
	return before > 0 && t.sliceRemCycles == 0
}
