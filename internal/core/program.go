package core

import "hrtsched/internal/sim"

// Program is the body of a thread. The scheduler drives it by asking for
// the next Action whenever the previous one completes; between calls the
// thread may be preempted, blocked and migrated without the program
// noticing, exactly like a real instruction stream.
//
// Programs run inside a deterministic simulation, so they must not consume
// real-world entropy or time; use ThreadCtx's clock and RNG.
type Program interface {
	Next(tc *ThreadCtx) Action
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(tc *ThreadCtx) Action

// Next calls f.
func (f ProgramFunc) Next(tc *ThreadCtx) Action { return f(tc) }

// Action is one step of a thread's execution. The concrete types below are
// the full set.
type Action interface{ isAction() }

// Compute consumes the given number of CPU cycles. It is the only action
// that takes time; everything else is an instantaneous control transfer.
type Compute struct{ Cycles int64 }

// Exit terminates the thread.
type Exit struct{}

// Yield invokes the local scheduler without blocking; the thread stays
// runnable (an aperiodic thread goes to the back of its priority level).
type Yield struct{}

// SleepUntil blocks the thread until the given wall-clock time (ns).
type SleepUntil struct{ WallNs int64 }

// Block parks the thread until some other agent calls Kernel.Wake on it.
// Waiter registration (e.g. adding itself to a barrier's list) must already
// have happened in a preceding Call action.
type Block struct{}

// Call runs fn instantaneously in thread context and then asks the program
// for the next action. It is how programs touch shared state (group
// structures, BSP neighbor vectors) at a well-defined simulated instant.
// Model any associated cost as an explicit preceding Compute.
type Call struct{ Fn func(tc *ThreadCtx) }

// ChangeConstraints performs individual admission control, consuming the
// platform's admission cost in thread context (Section 3.2: "admission
// control runs in the context of the thread requesting admission"). The
// verdict is delivered through ThreadCtx.AdmitOK before the program's next
// Next call.
type ChangeConstraints struct{ C Constraints }

func (Compute) isAction()           {}
func (Exit) isAction()              {}
func (Yield) isAction()             {}
func (SleepUntil) isAction()        {}
func (Block) isAction()             {}
func (Call) isAction()              {}
func (ChangeConstraints) isAction() {}

// ThreadCtx is the execution context handed to a Program. It is only valid
// during the Next or Call invocation it is passed to.
type ThreadCtx struct {
	K     *Kernel
	T     *Thread
	CPU   int
	NowNs int64 // wall-clock estimate of the thread's current CPU
	Rand  *sim.Rand
	// AdmitOK reports the verdict of the most recent ChangeConstraints
	// action (true = admitted).
	AdmitOK bool
	// AdmitErr carries the rejection reason when AdmitOK is false.
	AdmitErr error
}

// Seq returns a Program that executes the given actions once, in order,
// then exits. Useful for tests and simple workloads.
func Seq(actions ...Action) Program {
	i := 0
	return ProgramFunc(func(tc *ThreadCtx) Action {
		if i >= len(actions) {
			return Exit{}
		}
		a := actions[i]
		i++
		return a
	})
}

// Loop returns a Program that repeats body(iter, tc) until it returns nil,
// then exits. body is called once per action, with iter counting actions
// delivered so far.
func Loop(body func(iter int, tc *ThreadCtx) Action) Program {
	i := 0
	return ProgramFunc(func(tc *ThreadCtx) Action {
		a := body(i, tc)
		i++
		if a == nil {
			return Exit{}
		}
		return a
	})
}
