package core

// Task is the paper's finer-granularity work unit (Section 3.1): a queued
// callback cheaper than a thread, similar to a softIRQ or DPC but with one
// crucial difference — a size-tagged task may be executed directly by the
// scheduler only when doing so cannot disturb any periodic or sporadic
// thread, and untagged tasks are relegated to a helper thread. Real-time
// threads are therefore never delayed by tasks.
type Task struct {
	// Name labels the task for debugging.
	Name string
	// SizeCycles is the declared size tag; 0 means unsized.
	SizeCycles int64
	// ActualCycles is the true execution cost (simulated consumption).
	ActualCycles int64
	// Fn runs when the task executes. It may be nil.
	Fn func(k *Kernel, cpu int)

	done bool
}

// Done reports whether the task has executed.
func (t *Task) Done() bool { return t.done }

// PostTask queues task on the given CPU. Size-tagged tasks go to the local
// scheduler's inline queue; unsized tasks go to the helper thread's queue
// (spawning the helper on first use). A kick ensures timely processing.
func (k *Kernel) PostTask(cpu int, task *Task) {
	s := k.Locals[cpu]
	if task.SizeCycles > 0 {
		s.sizedTasks = append(s.sizedTasks, task)
	} else {
		s.unsizedTasks = append(s.unsizedTasks, task)
		s.ensureTaskThread()
		if s.taskThread.state == Blocked {
			k.Wake(s.taskThread)
			return
		}
	}
	k.Kick(cpu)
}

// drainSizedTasks executes size-tagged tasks in scheduler context while no
// real-time thread is runnable and the next task still fits before the next
// real-time arrival. It returns the cycles consumed inline.
func (s *LocalScheduler) drainSizedTasks(nowNs int64) int64 {
	if len(s.sizedTasks) == 0 || s.rtq.Len() > 0 {
		return 0
	}
	if cur := s.current; cur != nil && cur.isRTNow() {
		return 0
	}
	budgetNs := int64(1 << 62)
	if p := s.pending.Peek(); p != nil {
		budgetNs = p.arrivalNs - nowNs
	}
	var spent int64
	for len(s.sizedTasks) > 0 {
		task := s.sizedTasks[0]
		need := s.clock.CyclesToNanos(task.SizeCycles)
		if need > budgetNs {
			break
		}
		s.sizedTasks = s.sizedTasks[1:]
		cost := task.ActualCycles
		if cost <= 0 {
			cost = task.SizeCycles
		}
		spent += cost
		budgetNs -= s.clock.CyclesToNanos(cost)
		if task.Fn != nil {
			task.Fn(s.k, s.cpu.ID())
		}
		task.done = true
		s.Stats.TasksInline++
	}
	return spent
}

// ensureTaskThread lazily spawns the per-CPU helper thread that processes
// unsized tasks as an ordinary aperiodic thread.
func (s *LocalScheduler) ensureTaskThread() {
	if s.taskThread != nil {
		return
	}
	cpu := s.cpu.ID()
	var inFlight *Task
	s.taskThread = s.k.spawnInternal("task-exec", cpu, ProgramFunc(func(tc *ThreadCtx) Action {
		if inFlight != nil {
			// The Compute for this task just finished; run its callback.
			if inFlight.Fn != nil {
				inFlight.Fn(tc.K, cpu)
			}
			inFlight.done = true
			inFlight = nil
		}
		ls := tc.K.Locals[cpu]
		if len(ls.unsizedTasks) == 0 {
			return Block{}
		}
		inFlight = ls.unsizedTasks[0]
		ls.unsizedTasks = ls.unsizedTasks[1:]
		cost := inFlight.ActualCycles
		if cost <= 0 {
			cost = 1
		}
		return Compute{Cycles: cost}
	}), false)
}

// TaskBacklog returns the (sized, unsized) task queue lengths on a CPU.
func (k *Kernel) TaskBacklog(cpu int) (int, int) {
	s := k.Locals[cpu]
	return len(s.sizedTasks), len(s.unsizedTasks)
}
