package core

import "hrtsched/internal/sim"

// Work stealing (Section 3.4): the idle thread on each CPU uses
// power-of-two-random-choices victim selection to avoid global
// coordination, and only aperiodic threads may be stolen or otherwise
// moved between local schedulers — which is what keeps parallel/distributed
// admission control unnecessary and group scheduling simple.

// armSteal schedules the next steal attempt while the CPU is idle, by
// re-arming the persistent steal event in place (its handler lives in
// newLocalScheduler).
func (s *LocalScheduler) armSteal() {
	if s.cfg.Steal == StealOff || s.k.NumCPUs() < 2 {
		return
	}
	s.stealGen = s.gen
	d := sim.Duration(s.clock.NanosToCycles(s.cfg.StealCheckNs))
	if d < 1 {
		d = 1
	}
	s.stealEv.RescheduleAfter(d)
}

func (s *LocalScheduler) cancelSteal() {
	s.stealEv.Cancel()
}

// trySteal attempts one victim selection and theft. It returns true if a
// thread was stolen onto this CPU.
func (s *LocalScheduler) trySteal() bool {
	s.Stats.StealAttempts++
	victim := s.pickVictim()
	if victim == nil {
		return false
	}
	// Lock the victim's local scheduler only after ascertaining it has
	// available work (the paper's locking discipline).
	t := victim.stealableThread()
	if t == nil {
		return false
	}
	victim.aperq.Remove(t)
	t.cpu = s.cpu.ID()
	t.state = RunnableAper
	s.rrCounter++
	t.rrSeq = s.rrCounter
	s.mustPush(s.aperq, t)
	s.Stats.Steals++
	return true
}

// pickVictim chooses a victim scheduler under the configured policy.
func (s *LocalScheduler) pickVictim() *LocalScheduler {
	n := s.k.NumCPUs()
	me := s.cpu.ID()
	switch s.cfg.Steal {
	case StealPowerOfTwo:
		a := s.rng.Intn(n)
		b := s.rng.Intn(n)
		if a == me {
			a = (a + 1) % n
		}
		if b == me {
			b = (b + 1) % n
		}
		va, vb := s.k.Locals[a], s.k.Locals[b]
		if va.stealableCount() >= vb.stealableCount() {
			if va.stealableCount() > 0 {
				return va
			}
			return nil
		}
		if vb.stealableCount() > 0 {
			return vb
		}
		return nil
	case StealLinear:
		for i := 1; i < n; i++ {
			v := s.k.Locals[(me+i)%n]
			if v.stealableCount() > 0 {
				return v
			}
		}
		return nil
	default:
		return nil
	}
}

// stealableCount counts aperiodic queued threads marked stealable.
func (s *LocalScheduler) stealableCount() int {
	n := 0
	s.aperq.All(func(t *Thread) {
		if t.Stealable && t.state == RunnableAper {
			n++
		}
	})
	return n
}

// stealableThread returns one stealable thread from the aperiodic queue,
// preferring the least important (back of the round robin), or nil.
func (s *LocalScheduler) stealableThread() *Thread {
	var best *Thread
	s.aperq.All(func(t *Thread) {
		if !t.Stealable || t.state != RunnableAper {
			return
		}
		if best == nil || byPriorityRR(best, t) {
			best = t
		}
	})
	return best
}
