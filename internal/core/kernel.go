package core

import (
	"fmt"

	"hrtsched/internal/machine"
	"hrtsched/internal/mem"
	"hrtsched/internal/sim"
	"hrtsched/internal/timesync"
)

// Kernel is the Nautilus-style kernel instance: the machine, the calibrated
// per-CPU clocks, and the global scheduler — which is nothing but the very
// loosely coupled collection of per-CPU local schedulers (Figure 1).
type Kernel struct {
	M      *machine.Machine
	Eng    *sim.Engine
	Cfg    Config
	Calib  *timesync.Result
	Clocks []*timesync.Clock
	Locals []*LocalScheduler

	// Mem is the NUMA memory substrate. Thread control blocks and stacks
	// are placed in the zone nearest the thread's CPU, so "essential
	// thread (e.g., context, stack) and scheduler state is guaranteed to
	// always be in the most desirable zone" (Section 2).
	Mem *mem.NUMA

	// AdmitCostCycles is the cost of one local admission-control run.
	AdmitCostCycles int64

	// OnSwitch, if set, is called whenever a local scheduler context-
	// switches into a thread: the instrumentation hook behind Figures 11
	// and 12.
	OnSwitch func(cpu int, t *Thread, nowNs int64, wall sim.Time)

	// Hooks are optional fine-grained instrumentation callbacks used by the
	// trace package. All run synchronously in simulation context.
	Hooks Hooks

	// GroupResolver, if set, maps a thread to its group cohort so the
	// degradation layer sheds (and re-admits) whole groups atomically,
	// never partially — the revocation mirror of Algorithm 1's
	// all-or-nothing admission. group.EnableAtomicShed installs it.
	GroupResolver func(t *Thread) []*Thread

	scopeHook *ScopeHook

	degradeStats DegradeStats

	threads     []*Thread
	liveThreads int
	stackPool   []uint64
	poolStats   PoolStats
	nextID      int
	rng         *sim.Rand
	threadRands []*sim.Rand
	booted      bool
}

// ScopeHook wires the GPIO instrumentation of Section 5.2 to one CPU:
// pin 0 tracks whether the designated test thread is running, pin 1 the
// scheduler pass, pin 2 the interrupt handler (which contains the pass and
// the context switch, as in Figure 4).
type ScopeHook struct {
	CPU    int
	Thread *Thread
}

// Boot constructs a kernel on machine m: runs boot-time cycle-counter
// calibration, builds the per-CPU clocks and local schedulers, and starts
// each local scheduler with an initial invocation.
func Boot(m *machine.Machine, cfg Config) *Kernel {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1024
	}
	k := &Kernel{
		M:               m,
		Eng:             m.Eng,
		Cfg:             cfg,
		rng:             m.Rand(),
		AdmitCostCycles: m.Spec.AdmitCostCycles,
	}
	numa, err := mem.PhiLayout(m.NumCPUs())
	if err != nil {
		panic(err)
	}
	k.Mem = numa
	k.Calib = timesync.Calibrate(m, k.rng.Split())
	k.Clocks = make([]*timesync.Clock, m.NumCPUs())
	k.Locals = make([]*LocalScheduler, m.NumCPUs())
	k.threadRands = make([]*sim.Rand, 64)
	for i := range k.threadRands {
		k.threadRands[i] = k.rng.Split()
	}
	for i := 0; i < m.NumCPUs(); i++ {
		k.Clocks[i] = timesync.NewClock(m.CPU(i), k.Calib)
		k.Locals[i] = newLocalScheduler(k, m.CPU(i), k.Clocks[i], &k.Cfg, k.rng.Split())
	}
	// Kick every local scheduler once so it arms its machinery.
	for i := 0; i < m.NumCPUs(); i++ {
		s := k.Locals[i]
		k.Eng.After(1, sim.Hard, func(now sim.Time) {
			s.invoke(ReasonBoot, now)
		})
	}
	if cfg.WatchdogNs > 0 {
		k.startWatchdog()
	}
	k.booted = true
	return k
}

// startWatchdog arms the cross-CPU timer watchdog: every WatchdogNs it
// kicks any CPU whose scheduler has been silent that long while holding
// work. This is the recovery path for a lost one-shot timer firing — the
// only interrupt a priority-filtered real-time CPU still accepts is a
// scheduling-class IPI from a peer.
func (k *Kernel) startWatchdog() {
	period := k.Cfg.WatchdogNs
	cycles := k.Clocks[0].NanosToCycles(period)
	if cycles < 1 {
		cycles = 1
	}
	var wd *sim.Event
	wd = k.Eng.NewEvent(sim.Hard, func(now sim.Time) {
		for i, s := range k.Locals {
			nowNs := s.nowNs(0)
			if nowNs-s.lastPassNs < period {
				continue
			}
			np, nrt, nap := s.Queues()
			if s.current == nil && np+nrt+nap == 0 {
				continue // truly idle: silence is fine
			}
			s.Stats.WatchdogKicks++
			k.Kick(i)
		}
		wd.RescheduleAfter(sim.Duration(cycles))
	})
	wd.RescheduleAfter(sim.Duration(cycles))
}

// NumCPUs returns the machine's hardware thread count.
func (k *Kernel) NumCPUs() int { return k.M.NumCPUs() }

// NowNs returns CPU 0's wall-clock estimate — the system's reference time.
func (k *Kernel) NowNs() int64 { return k.Clocks[0].NowNanos() }

// Threads returns every thread ever spawned, in creation order.
func (k *Kernel) Threads() []*Thread { return k.threads }

// LiveThreads returns the number of non-exited threads.
func (k *Kernel) LiveThreads() int { return k.liveThreads }

// Spawn creates a thread bound to the given CPU running prog, beginning
// life — as all threads do — in the aperiodic class with default priority.
// The owning local scheduler is kicked so the thread starts promptly.
func (k *Kernel) Spawn(name string, cpu int, prog Program) *Thread {
	return k.spawnOpts(name, cpu, prog, false, 100)
}

// SpawnStealable is Spawn for threads the work stealer may migrate.
func (k *Kernel) SpawnStealable(name string, cpu int, prog Program) *Thread {
	return k.spawnOpts(name, cpu, prog, true, 100)
}

// SpawnPriority is Spawn with an explicit aperiodic priority (lower value
// is more important).
func (k *Kernel) SpawnPriority(name string, cpu int, prog Program, prio uint32) *Thread {
	return k.spawnOpts(name, cpu, prog, false, prio)
}

func (k *Kernel) spawnInternal(name string, cpu int, prog Program, stealable bool) *Thread {
	// Kernel helper threads (task-exec) outrank default-priority work but
	// never real-time threads.
	return k.spawnOpts(name, cpu, prog, stealable, 50)
}

func (k *Kernel) spawnOpts(name string, cpu int, prog Program, stealable bool, prio uint32) *Thread {
	if cpu < 0 || cpu >= k.NumCPUs() {
		panic(fmt.Sprintf("core: spawn on nonexistent CPU %d", cpu))
	}
	// TCB and stack live in the zone nearest the thread's CPU, reanimated
	// from the reap pool when possible (Section 3.4).
	const tcbAndStackBytes = 32 << 10
	stackAddr, pooled := k.reanimateStack()
	if !pooled {
		var err error
		stackAddr, _, err = k.Mem.AllocNear(cpu, tcbAndStackBytes)
		if err != nil {
			panic(fmt.Sprintf("core: spawn: %v", err))
		}
	}
	t := &Thread{
		id:        k.nextID,
		name:      name,
		k:         k,
		cpu:       cpu,
		prog:      prog,
		state:     RunnableAper,
		cons:      AperiodicConstraints(prio),
		Stealable: stealable,
		qIdx:      -1,
		stackAddr: stackAddr,
	}
	k.nextID++
	k.threads = append(k.threads, t)
	k.liveThreads++
	s := k.Locals[cpu]
	s.rrCounter++
	t.rrSeq = s.rrCounter
	s.mustPush(s.aperq, t)
	k.Kick(cpu)
	return t
}

// Wake makes a blocked or sleeping thread runnable again on its CPU and
// kicks that CPU's local scheduler. Waking a runnable thread is a no-op.
// Real-time threads that slept across arrivals have their schedule rolled
// forward silently (they were not asking for time while blocked).
func (k *Kernel) Wake(t *Thread) {
	if t.state != Blocked && t.state != Sleeping {
		return
	}
	s := k.Locals[t.cpu]
	nowNs := s.nowNs(0)
	switch t.cons.Type {
	case Periodic:
		for t.deadlineNs <= nowNs {
			t.arrivalNs = t.deadlineNs
			t.deadlineNs += t.cons.PeriodNs
			t.sliceRemCycles = s.clock.NanosToCycles(t.cons.SliceNs)
			t.periodIndex++
		}
		t.debtCycles = 0
		if t.arrivalNs <= nowNs {
			// Waking mid-period: the thread waived the part of its slice
			// it spent blocked, so commit only to what still fits before
			// the deadline (leaving room for the scheduler's own
			// invocations); committing to the full slice would fabricate a
			// miss the thread never asked the scheduler to prevent.
			overheadNs := s.clock.CyclesToNanos(2 * k.M.Spec.TotalSchedCycles())
			fitNs := t.deadlineNs - nowNs - overheadNs
			if fitNs <= 0 {
				// Too close to the boundary: wait for the next arrival.
				t.arrivalNs = t.deadlineNs
				t.deadlineNs += t.cons.PeriodNs
				t.sliceRemCycles = s.clock.NanosToCycles(t.cons.SliceNs)
				t.periodIndex++
				t.state = PendingArrival
				s.mustPush(s.pending, t)
				break
			}
			if fit := s.clock.NanosToCycles(fitNs); fit < t.sliceRemCycles {
				t.sliceRemCycles = fit
			}
			t.state = RunnableRT
			t.Arrivals++
			s.mustPush(s.rtq, t)
		} else {
			t.state = PendingArrival
			s.mustPush(s.pending, t)
		}
	case Sporadic:
		if t.isRTNow() {
			t.state = RunnableRT
			s.mustPush(s.rtq, t)
		} else {
			t.state = RunnableAper
			s.rrCounter++
			t.rrSeq = s.rrCounter
			s.mustPush(s.aperq, t)
		}
	default:
		t.state = RunnableAper
		s.rrCounter++
		t.rrSeq = s.rrCounter
		s.mustPush(s.aperq, t)
	}
	k.Kick(t.cpu)
}

// Kick sends a scheduling IPI to the given CPU, arriving after the
// platform's IPI latency. If the CPU is mid-pass the kick is held pending
// by the task-priority mechanism and drains at dispatch.
func (k *Kernel) Kick(cpu int) {
	target := k.M.CPU(cpu)
	k.Eng.After(sim.Duration(k.M.Spec.IPILatencyCycles), sim.Hard, func(now sim.Time) {
		target.RaiseInterrupt(machine.VecKick)
	})
}

// SetScope installs (or clears, with nil) the GPIO instrumentation hook.
func (k *Kernel) SetScope(h *ScopeHook) { k.scopeHook = h }

// RunNs advances the simulation by wallNs nanoseconds of simulated time.
func (k *Kernel) RunNs(wallNs int64) {
	until := k.Eng.Now() + sim.NanosToCycles(wallNs, k.M.Spec.FreqHz)
	k.Eng.Run(until)
}

// RunUntilNs advances the simulation until the reference wall clock
// (cycles since time zero) reaches wallNs.
func (k *Kernel) RunUntilNs(wallNs int64) {
	k.Eng.Run(sim.NanosToCycles(wallNs, k.M.Spec.FreqHz))
}

// RunUntil advances the simulation until cond() holds or the event queue
// drains, checking after every event. maxEvents bounds runaway loops.
func (k *Kernel) RunUntil(cond func() bool, maxEvents uint64) bool {
	var n uint64
	for !cond() {
		if !k.Eng.Step() {
			return cond()
		}
		n++
		if n > maxEvents {
			panic("core: RunUntil exceeded event bound")
		}
	}
	return true
}

// deviceIRQ handles an external device interrupt on this CPU: the bounded
// handler cost delays whatever was running (which is why RT threads live
// in the interrupt-free partition), and with the interrupt-thread
// configuration most of the work is deferred to a dedicated thread.
func (s *LocalScheduler) deviceIRQ(vec machine.Vector, now sim.Time) {
	s.Stats.DeviceIRQs++
	if s.k.Hooks.DeviceIRQ != nil {
		s.k.Hooks.DeviceIRQ(s.cpu.ID(), uint8(vec), s.nowNs(0))
	}
	src := s.k.M.IRQ.SourceByVector(vec)
	handler := int64(500)
	if src != nil {
		handler = src.HandlerCycles
	}
	irq := s.k.M.OverheadJitter(s.rng, s.k.M.Spec.IRQEntryCycles)

	if s.cfg.InterruptThread {
		// Acknowledge only; defer the body to the interrupt thread.
		ack := handler / 8
		if ack < 100 {
			ack = 100
		}
		body := handler - ack
		s.interruptHandlerWindow(now, irq+ack)
		s.k.PostTask(s.cpu.ID(), &Task{
			Name:         "irq-body",
			ActualCycles: body,
		})
		return
	}
	s.interruptHandlerWindow(now, irq+handler)
}

// interruptHandlerWindow steals cost cycles from the current thread without
// a scheduling pass: account progress, pause, and resume the same thread
// afterwards (the timer remains armed at its absolute target).
func (s *LocalScheduler) interruptHandlerWindow(now sim.Time, cost int64) {
	t := s.current
	if t == nil || t.state != Running {
		// Idle CPU: the handler just burns idle time.
		return
	}
	s.accountCurrent(now)
	s.cancelAction()
	gen := s.gen
	s.scopeIRQWindow(now, cost)
	s.k.Eng.After(sim.Duration(cost), sim.Soft, func(dn sim.Time) {
		if gen != s.gen || s.current != t || t.state != Running {
			return
		}
		// The window ran to completion unpreempted; attribute it. A window
		// cut short by a new pass is left to the idle residual instead.
		s.irqWindowCycles += cost
		s.runStartWall = dn
		s.missingAtStart = s.k.Eng.MissingTime()
		s.startAction(t, dn)
	})
}

// --- GPIO instrumentation -------------------------------------------------

func (s *LocalScheduler) scopeInvoke(now sim.Time, irq, pass, swc int64) {
	h := s.k.scopeHook
	if h == nil || h.CPU != s.cpu.ID() {
		return
	}
	g := s.k.M.GPIO
	// Pin 2: interrupt handler window (entry through context switch).
	g.SetPin(2, true)
	// Pin 1: the scheduler pass proper.
	s.k.Eng.After(sim.Duration(irq), sim.Soft, func(sim.Time) { g.SetPin(1, true) })
	s.k.Eng.After(sim.Duration(irq+pass), sim.Soft, func(sim.Time) { g.SetPin(1, false) })
	s.k.Eng.After(sim.Duration(irq+pass+swc), sim.Soft, func(sim.Time) { g.SetPin(2, false) })
}

func (s *LocalScheduler) scopeThread(active bool) {
	h := s.k.scopeHook
	if h == nil || h.CPU != s.cpu.ID() {
		return
	}
	s.k.M.GPIO.SetPin(0, active)
}

func (s *LocalScheduler) scopeIRQWindow(now sim.Time, cost int64) {
	h := s.k.scopeHook
	if h == nil || h.CPU != s.cpu.ID() {
		return
	}
	g := s.k.M.GPIO
	g.SetPin(2, true)
	s.k.Eng.After(sim.Duration(cost), sim.Soft, func(sim.Time) { g.SetPin(2, false) })
}
