package core

import "testing"

func TestThreadPoolReanimation(t *testing.T) {
	k := testKernel(t, 1, 111, nil)
	baseline := k.Mem.Zone(0).Allocs

	// Churn: spawn and exit many short-lived threads sequentially.
	const churn = 50
	done := 0
	var next func()
	next = func() {
		if done >= churn {
			return
		}
		th := k.Spawn("churn", 0, Seq(Compute{Cycles: 10_000}))
		th.OnExit = func(*Thread) {
			done++
			next()
		}
	}
	next()
	k.RunUntil(func() bool { return done == churn }, 1<<24)

	ps := k.PoolStats()
	if ps.Reaped < churn-1 {
		t.Fatalf("reaped %d of %d exits", ps.Reaped, churn)
	}
	if ps.Reanimated < churn-2 {
		t.Fatalf("reanimated only %d spawns", ps.Reanimated)
	}
	// Only the first spawn should have hit the allocator.
	newAllocs := k.Mem.Zone(0).Allocs - baseline
	if newAllocs > 2 {
		t.Fatalf("allocator hit %d times despite pool", newAllocs)
	}
}

func TestThreadPoolDrain(t *testing.T) {
	k := testKernel(t, 1, 112, nil)
	done := 0
	for i := 0; i < 5; i++ {
		th := k.Spawn("d", 0, Seq(Compute{Cycles: 1000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == 5 }, 1<<24)
	before := k.Mem.Zone(0).BytesAllocated
	n := k.DrainPool()
	if n == 0 {
		t.Fatalf("pool was empty after churn")
	}
	if k.Mem.Zone(0).BytesAllocated >= before {
		t.Fatalf("drain released nothing")
	}
	if k.PoolStats().Reaped == 0 {
		t.Fatalf("no reaps recorded")
	}
}

func TestNoStackLeakAcrossLifecycles(t *testing.T) {
	k := testKernel(t, 2, 113, nil)
	done := 0
	const n = 30
	for i := 0; i < n; i++ {
		th := k.Spawn("leakcheck", i%2, Seq(Compute{Cycles: 5_000}))
		th.OnExit = func(*Thread) { done++ }
	}
	k.RunUntil(func() bool { return done == n }, 1<<24)
	k.DrainPool()
	// Only boot-time helpers may still hold memory; transient threads must
	// not leak. Allow the two task-less CPUs' zero helpers: nothing else.
	if live := k.Mem.Zone(0).BytesAllocated; live != 0 {
		t.Fatalf("leaked %d bytes after all threads exited", live)
	}
}
