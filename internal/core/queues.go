package core

// The local scheduler's queues are fixed-capacity binary heaps, mirroring
// the paper's compile-time bound on the total number of threads: "each
// local scheduler uses fixed size priority queues to implement the pending
// and real-time run queues" (Section 3.3). Fixed capacity keeps every
// scheduler invocation's cost bounded.

// threadOrder compares two threads for a particular queue.
type threadOrder func(a, b *Thread) bool

// threadHeap is a bounded binary min-heap of threads. Each thread tracks
// its index via qIdx, enabling O(log n) removal of arbitrary elements.
type threadHeap struct {
	items []*Thread
	less  threadOrder
	cap   int
}

func newThreadHeap(capacity int, less threadOrder) *threadHeap {
	return &threadHeap{items: make([]*Thread, 0, capacity), less: less, cap: capacity}
}

func (h *threadHeap) Len() int { return len(h.items) }

// Peek returns the minimum without removing it, or nil when empty.
func (h *threadHeap) Peek() *Thread {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

// Push inserts t. It returns ErrTooManyThreads when the compile-time bound
// is exceeded.
func (h *threadHeap) Push(t *Thread) error {
	if len(h.items) >= h.cap {
		return ErrTooManyThreads
	}
	t.qIdx = len(h.items)
	h.items = append(h.items, t)
	h.up(t.qIdx)
	return nil
}

// Pop removes and returns the minimum, or nil when empty.
func (h *threadHeap) Pop() *Thread {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	h.removeAt(0)
	return top
}

// Remove deletes t from the heap. It panics if t is not in this heap's
// recorded position (a scheduler invariant violation).
func (h *threadHeap) Remove(t *Thread) {
	i := t.qIdx
	if i < 0 || i >= len(h.items) || h.items[i] != t {
		panic("core: thread heap corruption: removing absent thread")
	}
	h.removeAt(i)
}

// Contains reports whether t is present at its recorded index.
func (h *threadHeap) Contains(t *Thread) bool {
	i := t.qIdx
	return i >= 0 && i < len(h.items) && h.items[i] == t
}

// Fix restores heap order after t's key changed in place.
func (h *threadHeap) Fix(t *Thread) {
	i := t.qIdx
	if i < 0 || i >= len(h.items) || h.items[i] != t {
		panic("core: thread heap corruption: fixing absent thread")
	}
	if !h.down(i) {
		h.up(i)
	}
}

// All calls fn for each queued thread in unspecified order.
func (h *threadHeap) All(fn func(t *Thread)) {
	for _, t := range h.items {
		fn(t)
	}
}

func (h *threadHeap) removeAt(i int) {
	last := len(h.items) - 1
	removed := h.items[i]
	h.swap(i, last)
	h.items[last] = nil
	h.items = h.items[:last]
	if i < last {
		if !h.down(i) {
			h.up(i)
		}
	}
	removed.qIdx = -1
}

func (h *threadHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].qIdx = i
	h.items[j].qIdx = j
}

func (h *threadHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *threadHeap) down(i0 int) bool {
	i := i0
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			child = right
		}
		if !h.less(h.items[child], h.items[i]) {
			break
		}
		h.swap(i, child)
		i = child
	}
	return i > i0
}

// byArrival orders the pending queue: earliest next arrival first.
func byArrival(a, b *Thread) bool {
	if a.arrivalNs != b.arrivalNs {
		return a.arrivalNs < b.arrivalNs
	}
	return a.id < b.id
}

// byDeadline orders the real-time run queue: earliest deadline first (EDF).
func byDeadline(a, b *Thread) bool {
	if a.deadlineNs != b.deadlineNs {
		return a.deadlineNs < b.deadlineNs
	}
	return a.id < b.id
}

// byPriorityRR orders the non-real-time run queue: lower priority value
// first, round-robin (insertion sequence) within a level.
func byPriorityRR(a, b *Thread) bool {
	if a.cons.Priority != b.cons.Priority {
		return a.cons.Priority < b.cons.Priority
	}
	if a.rrSeq != b.rrSeq {
		return a.rrSeq < b.rrSeq
	}
	return a.id < b.id
}
