package machine

import "hrtsched/internal/sim"

// Vector identifies an interrupt. As on x64, the high nibble is the
// priority class: the APIC delivers a vector only when its class exceeds
// the CPU's task priority, otherwise the interrupt is held pending.
type Vector uint8

const (
	// VecTimer is the APIC one-shot timer interrupt that drives the local
	// scheduler. Scheduling interrupts occupy the highest priority class.
	VecTimer Vector = 0xF0
	// VecKick is the cross-CPU scheduling IPI ("kick", Section 3.4).
	VecKick Vector = 0xF1
	// VecDeviceBase is the first vector used for external device interrupts.
	VecDeviceBase Vector = 0x40
)

// Class returns the priority class (high nibble) of the vector.
func (v Vector) Class() uint8 { return uint8(v) >> 4 }

// SchedPriority is the task priority that admits only scheduling-class
// interrupts; it is what the scheduler programs while a hard real-time
// thread runs (Section 3.5).
const SchedPriority uint8 = 0xE

// InterruptSink receives delivered interrupts. The kernel's local scheduler
// registers itself as the sink of its CPU.
type InterruptSink interface {
	HandleInterrupt(cpu *CPU, vec Vector, now sim.Time)
}

// TimerFault perturbs the APIC one-shot timer — the fault-injection channel
// for modelling timer miscalibration beyond the conservative-rounding spec.
// It receives the programmed countdown in cycles and returns the countdown
// the hardware will actually honour plus whether the firing is delivered at
// all (false models a lost one-shot firing). A nil fault is the identity.
type TimerFault func(delayCycles int64) (int64, bool)

// CPU is one hardware thread: a cycle counter, an APIC with a one-shot
// timer and a task-priority register, and a boot time.
type CPU struct {
	id     int
	mach   *Machine
	bootAt sim.Time

	tscOffset int64 // TSC reading = wall clock + tscOffset

	timerEvent *sim.Event // persistent one-shot firing, re-armed in place
	timerFault TimerFault
	lostFires  int64
	tpr        uint8
	pending    []Vector // held-pending interrupts, delivery order
	sink       InterruptSink
}

func newCPU(m *Machine, id int, bootAt sim.Time, tscOffset int64) *CPU {
	c := &CPU{id: id, mach: m, bootAt: bootAt, tscOffset: tscOffset}
	// The one-shot timer is the hottest churn site in the whole simulator:
	// every scheduler pass disarms and re-arms it. A single pre-bound
	// persistent event makes each re-arm an in-place heap fix with zero
	// allocations instead of a cancel-plus-new-event pair.
	c.timerEvent = m.Eng.NewEvent(sim.Hard, func(now sim.Time) {
		c.RaiseInterrupt(VecTimer)
	})
	return c
}

// ID returns the hardware thread index.
func (c *CPU) ID() int { return c.id }

// Machine returns the owning machine.
func (c *CPU) Machine() *Machine { return c.mach }

// BootAt returns the time this CPU begins executing kernel boot code.
func (c *CPU) BootAt() sim.Time { return c.bootAt }

// ReadTSC returns the CPU's cycle counter, which runs at the constant
// nominal frequency and is never stopped (constant TSC; it keeps counting
// through SMIs, which is exactly what makes SMIs appear as missing time).
func (c *CPU) ReadTSC() int64 {
	return int64(c.mach.Eng.Now()) + c.tscOffset
}

// WriteTSC sets the cycle counter to v, as the calibration code does on
// machines that support it. It panics if the platform's TSC is read-only.
func (c *CPU) WriteTSC(v int64) {
	if !c.mach.Spec.TSCWritable {
		panic("machine: TSC is not writable on " + c.mach.Spec.Name)
	}
	c.tscOffset = v - int64(c.mach.Eng.Now())
}

// TSCOffset exposes the true offset for test assertions; kernel code must
// not use it (it can only estimate it, which is the whole point of
// Section 3.4).
func (c *CPU) TSCOffset() int64 { return c.tscOffset }

// SkewTSC shifts the cycle counter by delta cycles without going through
// WriteTSC. This is a hardware-level fault channel — firmware rewriting the
// counter from SMM, or a deep-sleep calibration regression — so it works
// even on platforms whose TSC is not software-writable. The kernel cannot
// observe the skew directly, only its effects on the wall-clock estimate.
func (c *CPU) SkewTSC(delta int64) { c.tscOffset += delta }

// SetTimerFault installs (or clears, with nil) the one-shot timer fault
// injector for this CPU.
func (c *CPU) SetTimerFault(f TimerFault) { c.timerFault = f }

// LostTimerFires returns the number of one-shot firings swallowed by the
// installed timer fault.
func (c *CPU) LostTimerFires() int64 { return c.lostFires }

// SetSink registers the software interrupt handler for this CPU.
func (c *CPU) SetSink(s InterruptSink) { c.sink = s }

// SetPriority programs the task-priority register. Lowering the priority
// immediately delivers any held-pending interrupts that are now admissible.
func (c *CPU) SetPriority(p uint8) {
	c.tpr = p
	c.drainPending()
}

// Priority returns the current task priority.
func (c *CPU) Priority() uint8 { return c.tpr }

func (c *CPU) drainPending() {
	if c.sink == nil {
		return
	}
	i := 0
	for i < len(c.pending) {
		v := c.pending[i]
		if v.Class() > c.tpr {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.sink.HandleInterrupt(c, v, c.mach.Eng.Now())
			// Restart the scan: the handler may have changed the TPR.
			i = 0
			continue
		}
		i++
	}
}

// RaiseInterrupt presents vector v to the CPU at the current time. If the
// task priority admits it and a sink is registered, it is delivered
// immediately; otherwise it is held pending (one instance per vector, as
// in the APIC's IRR).
func (c *CPU) RaiseInterrupt(v Vector) {
	if c.sink != nil && v.Class() > c.tpr {
		c.sink.HandleInterrupt(c, v, c.mach.Eng.Now())
		return
	}
	for _, p := range c.pending {
		if p == v {
			return
		}
	}
	c.pending = append(c.pending, v)
}

// PendingCount reports how many vectors are held pending.
func (c *CPU) PendingCount() int { return len(c.pending) }

// SetOneShotTicks programs the APIC one-shot timer to fire after the given
// number of APIC ticks. A previously programmed timer is replaced, and any
// undelivered fire from the previous programming is retired: the scheduler
// invocation that is re-arming has already performed the work that stale
// fire announced, so delivering it afterwards would only produce a
// zero-progress spurious invocation (and, for countdowns shorter than the
// scheduler pass, a livelock).
func (c *CPU) SetOneShotTicks(ticks int64) {
	if ticks < 1 {
		ticks = 1
	}
	c.CancelTimer()
	c.retirePending(VecTimer)
	c.armTimer(ticks * c.mach.Spec.APICTickCycles)
}

// armTimer schedules the one-shot firing after d cycles, routing the
// countdown through the installed timer fault (if any).
func (c *CPU) armTimer(d int64) {
	if c.timerFault != nil {
		var deliver bool
		d, deliver = c.timerFault(d)
		if !deliver {
			c.lostFires++
			return
		}
		if d < 1 {
			d = 1
		}
	}
	c.timerEvent.RescheduleAfter(sim.Duration(d))
}

// SetOneShotNanos programs the one-shot timer for approximately ns
// nanoseconds from now, applying the conservative resolution conversion of
// Section 3.3: the tick count is rounded down so a resolution mismatch
// produces an earlier invocation, never a later one. In TSC-deadline mode
// the conversion is exact to the cycle.
func (c *CPU) SetOneShotNanos(ns int64) {
	if ns < 0 {
		ns = 0
	}
	cycles := int64(sim.NanosToCycles(ns, c.mach.Spec.FreqHz))
	if c.mach.Spec.TSCDeadline {
		c.CancelTimer()
		c.retirePending(VecTimer)
		if cycles < 1 {
			cycles = 1
		}
		c.armTimer(cycles)
		return
	}
	c.SetOneShotTicks(cycles / c.mach.Spec.APICTickCycles)
}

// retirePending removes an undelivered instance of vector v from the IRR.
func (c *CPU) retirePending(v Vector) {
	for i, p := range c.pending {
		if p == v {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// CancelTimer disarms a pending one-shot timer, if any.
func (c *CPU) CancelTimer() {
	c.timerEvent.Cancel()
}

// TimerArmed reports whether a one-shot timer is pending.
func (c *CPU) TimerArmed() bool { return c.timerEvent.Armed() }

// SendIPI sends an interprocessor interrupt to dst, arriving after the
// platform's IPI flight latency.
func (c *CPU) SendIPI(dst *CPU, v Vector) {
	lat := sim.Duration(c.mach.Spec.IPILatencyCycles)
	c.mach.Eng.After(lat, sim.Hard, func(now sim.Time) {
		dst.RaiseInterrupt(v)
	})
}
