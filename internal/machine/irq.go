package machine

import "hrtsched/internal/sim"

// DeviceSource is one external interrupt source (a NIC, a disk controller).
// Its interrupts are steerable to any CPU (Section 3.5); the default
// configuration steers everything to CPU 0, the interrupt-laden partition.
type DeviceSource struct {
	Name            string
	Vector          Vector
	MeanGapCycles   int64 // exponential inter-arrival mean; 0 = manual only
	HandlerCycles   int64 // bounded handler cost, advertised to admission
	target          int
	ctl             *IRQController
	rng             *sim.Rand
	ev              *sim.Event // persistent arrival event, re-armed per gap
	raised, dropped int64
	running         bool
}

// Target returns the CPU this source is currently steered to.
func (d *DeviceSource) Target() int { return d.target }

// Raised returns the number of interrupts delivered so far.
func (d *DeviceSource) Raised() int64 { return d.raised }

// Raise delivers one interrupt from this source now.
func (d *DeviceSource) Raise() {
	d.raised++
	d.ctl.mach.CPU(d.target).RaiseInterrupt(d.Vector)
}

func (d *DeviceSource) schedule() {
	if d.MeanGapCycles <= 0 || d.running {
		return
	}
	d.running = true
	if d.ev == nil {
		// One persistent event carries the whole arrival process: each
		// delivery re-arms it in place for the next exponential gap, so a
		// device storm costs zero allocations per interrupt.
		d.ev = d.ctl.mach.Eng.NewEvent(sim.Hard, func(now sim.Time) {
			if !d.running {
				return
			}
			d.Raise()
			d.armNext()
		})
	}
	d.armNext()
}

func (d *DeviceSource) armNext() {
	gap := sim.Duration(float64(d.MeanGapCycles) * d.rng.ExpFloat64())
	if gap < 1 {
		gap = 1
	}
	d.ev.RescheduleAfter(gap)
}

// Stop halts autonomous interrupt generation from this source.
func (d *DeviceSource) Stop() { d.running = false }

// IRQController owns the machine's external interrupt sources and their
// steering. CPUs outside the interrupt-laden partition never see device
// interrupts at all — they are "interrupt-free" (Figure 1).
type IRQController struct {
	mach    *Machine
	rng     *sim.Rand
	sources []*DeviceSource
	nextVec Vector
	laden   map[int]bool // CPUs in the interrupt-laden partition
}

func newIRQController(m *Machine, rng *sim.Rand) *IRQController {
	return &IRQController{
		mach:    m,
		rng:     rng,
		nextVec: VecDeviceBase,
		laden:   map[int]bool{0: true}, // default: CPU 0 takes all devices
	}
}

// AddDevice registers a device source steered to the first CPU of the
// interrupt-laden partition and, if meanGapCycles > 0, starts autonomous
// interrupt generation.
func (c *IRQController) AddDevice(name string, meanGapCycles, handlerCycles int64) *DeviceSource {
	d := &DeviceSource{
		Name:          name,
		Vector:        c.nextVec,
		MeanGapCycles: meanGapCycles,
		HandlerCycles: handlerCycles,
		target:        c.firstLaden(),
		ctl:           c,
		rng:           c.rng.Split(),
	}
	c.nextVec++
	if c.nextVec.Class() >= VecKick.Class() {
		panic("machine: too many device vectors")
	}
	c.sources = append(c.sources, d)
	d.schedule()
	return d
}

// Steer retargets a device source to the given CPU and adds that CPU to
// the interrupt-laden partition.
func (c *IRQController) Steer(d *DeviceSource, cpu int) {
	if cpu < 0 || cpu >= c.mach.NumCPUs() {
		panic("machine: steering to nonexistent CPU")
	}
	d.target = cpu
	c.laden[cpu] = true
}

// SetLadenPartition declares the exact set of CPUs that receive external
// interrupts and re-steers every source to the first of them.
func (c *IRQController) SetLadenPartition(cpus []int) {
	if len(cpus) == 0 {
		panic("machine: interrupt-laden partition cannot be empty")
	}
	c.laden = map[int]bool{}
	for _, i := range cpus {
		c.laden[i] = true
	}
	first := c.firstLaden()
	for _, d := range c.sources {
		d.target = first
	}
}

// InterruptFree reports whether the CPU is in the interrupt-free partition.
func (c *IRQController) InterruptFree(cpu int) bool { return !c.laden[cpu] }

// Sources returns the registered device sources.
func (c *IRQController) Sources() []*DeviceSource { return c.sources }

// SourceByVector returns the device that owns vector v, or nil.
func (c *IRQController) SourceByVector(v Vector) *DeviceSource {
	for _, d := range c.sources {
		if d.Vector == v {
			return d
		}
	}
	return nil
}

func (c *IRQController) firstLaden() int {
	best := -1
	for i := range c.laden {
		if best == -1 || i < best {
			best = i
		}
	}
	if best == -1 {
		return 0
	}
	return best
}
