// Package machine models the hardware platform the paper's scheduler runs
// on: a shared-memory x64 NUMA node with per-hardware-thread cycle counters,
// APIC one-shot timers, interprocessor interrupts, steerable external
// interrupts, and SMIs. Everything scheduler-visible is modelled at cycle
// resolution on top of the sim event engine.
package machine

import "hrtsched/internal/sim"

// Spec describes a concrete platform. The two presets, PhiKNL and R415,
// correspond to the paper's evaluation testbeds; all cost constants are
// calibrated to the measurements the paper reports (Section 5).
type Spec struct {
	Name    string
	NumCPUs int
	FreqHz  int64 // nominal constant-TSC frequency

	// Boot and time synchronization (Section 3.4).
	BootStaggerCycles   int64 // per-CPU boot start stagger
	BootTSCSpreadCycles int64 // raw pre-calibration TSC offset spread
	TSCWritable         bool  // platform supports writing the cycle counter
	CalibReadErrCycles  int64 // half-width of one cross-CPU offset measurement error
	CalibWriteErrCycles int64 // granularity error of a TSC write-back
	CalibRounds         int   // handshake rounds per CPU during calibration

	// APIC timer (Section 3.3).
	APICTickCycles int64 // one APIC timer tick in cycles
	TSCDeadline    bool  // supports TSC-deadline mode (tick == 1 cycle)

	// Local scheduler invocation cost breakdown, in cycles (Figure 5).
	IRQEntryCycles      int64 // interrupt dispatch, entry/exit
	SchedOtherCycles    int64 // lock, queue maintenance, accounting
	SchedPassCycles     int64 // the scheduling pass itself ("Resched")
	ContextSwitchCycles int64 // register/stack switch
	OverheadJitterPct   int64 // +/- percent run-to-run jitter on the above

	// Interconnect.
	IPILatencyCycles int64 // kick IPI flight time

	// Memory-system costs for the BSP microbenchmark (Section 6.1).
	LocalFlopCycles   int64 // one compute operation on a local element
	RemoteWriteCycles int64 // one write to another CPU's element

	// Kernel barrier costs (Sections 4.3-4.4).
	BarrierBaseCycles    int64 // fixed arrival/exit cost
	BarrierPerCPUCycles  int64 // linear component of the centralized barrier
	ReleaseStaggerCycles int64 // delta: per-thread delay departing a barrier

	// AdmitCostCycles is the cost of one local admission-control run,
	// consumed in the context of the requesting thread (the flat "Local
	// Change Constraints" line of Figure 10(c)).
	AdmitCostCycles int64

	// SMI model (Section 3.6). MeanSMIGapCycles == 0 disables SMIs.
	MeanSMIGapCycles  int64
	SMIDurationCycles int64
	SMIDurationJitter int64 // half-width of uniform jitter on duration
}

// TotalSchedCycles returns the nominal cost of one scheduler invocation:
// interrupt entry, bookkeeping, the scheduling pass, and a context switch.
func (s *Spec) TotalSchedCycles() int64 {
	return s.IRQEntryCycles + s.SchedOtherCycles + s.SchedPassCycles + s.ContextSwitchCycles
}

// CyclesToNanos converts cycles to nanoseconds at this platform's frequency.
func (s *Spec) CyclesToNanos(c sim.Time) int64 { return sim.CyclesToNanos(c, s.FreqHz) }

// NanosToCycles converts nanoseconds to cycles, truncating.
func (s *Spec) NanosToCycles(ns int64) sim.Time { return sim.NanosToCycles(ns, s.FreqHz) }

// MicrosToCycles converts microseconds to cycles, truncating.
func (s *Spec) MicrosToCycles(us int64) sim.Time { return s.NanosToCycles(us * 1000) }

// PhiKNL returns the Colfax KNL Ninja testbed: an Intel Xeon Phi 7210 at
// 1.3 GHz with 64 cores x 4 hardware threads = 256 CPUs. The scheduler
// invocation costs reproduce the ~6,000-cycle software overhead of
// Figure 5(a), which places the feasibility edge near a 10 us period
// (Figure 6). Cross-CPU calibration residuals land within ~1,000 cycles
// (Figure 3).
func PhiKNL() Spec {
	return Spec{
		Name:    "phi-knl",
		NumCPUs: 256,
		FreqHz:  1_300_000_000,

		BootStaggerCycles:   2_000_000,
		BootTSCSpreadCycles: 40_000_000,
		TSCWritable:         true,
		CalibReadErrCycles:  700,
		CalibWriteErrCycles: 260,
		CalibRounds:         8,

		APICTickCycles: 32,
		TSCDeadline:    false,

		IRQEntryCycles:      1100,
		SchedOtherCycles:    450,
		SchedPassCycles:     3200,
		ContextSwitchCycles: 1250,
		OverheadJitterPct:   12,

		IPILatencyCycles: 2600,

		LocalFlopCycles:   9,
		RemoteWriteCycles: 240,

		BarrierBaseCycles:    2400,
		BarrierPerCPUCycles:  210,
		ReleaseStaggerCycles: 190,

		AdmitCostCycles: 190_000,

		MeanSMIGapCycles:  0, // SMIs off by default; experiments enable them
		SMIDurationCycles: 160_000,
		SMIDurationJitter: 40_000,
	}
}

// R415 returns the Dell R415 testbed: dual AMD Opteron 4122 at 2.2 GHz,
// 8 CPUs total. Its faster single-thread performance gives roughly half the
// per-invocation cycle cost of the Phi (Figure 5(b)), pushing the
// feasibility edge down to about 4 us (Figure 7).
func R415() Spec {
	return Spec{
		Name:    "r415",
		NumCPUs: 8,
		FreqHz:  2_200_000_000,

		BootStaggerCycles:   1_000_000,
		BootTSCSpreadCycles: 20_000_000,
		TSCWritable:         false, // estimate-and-compensate only
		CalibReadErrCycles:  450,
		CalibWriteErrCycles: 0,
		CalibRounds:         8,

		APICTickCycles: 22,
		TSCDeadline:    false,

		IRQEntryCycles:      520,
		SchedOtherCycles:    210,
		SchedPassCycles:     1300,
		ContextSwitchCycles: 580,
		OverheadJitterPct:   12,

		IPILatencyCycles: 1500,

		LocalFlopCycles:   4,
		RemoteWriteCycles: 130,

		BarrierBaseCycles:    1400,
		BarrierPerCPUCycles:  150,
		ReleaseStaggerCycles: 120,

		AdmitCostCycles: 80_000,

		MeanSMIGapCycles:  0,
		SMIDurationCycles: 220_000,
		SMIDurationJitter: 60_000,
	}
}

// Scaled returns a copy of the spec with the CPU count overridden, for
// quick-preset experiments that exercise the identical code paths at
// reduced scale.
func (s Spec) Scaled(ncpus int) Spec {
	s.NumCPUs = ncpus
	return s
}

// SpecByName resolves a platform preset by its Spec.Name ("phiknl" or
// "r415"). ok is false for unknown names.
func SpecByName(name string) (spec Spec, ok bool) {
	switch name {
	case "phiknl", "":
		return PhiKNL(), true
	case "r415":
		return R415(), true
	default:
		return Spec{}, false
	}
}

// SpecNames lists the platform presets SpecByName accepts, in a fixed
// order suitable for error messages.
func SpecNames() []string { return []string{"phiknl", "r415"} }
