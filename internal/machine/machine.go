package machine

import (
	"fmt"

	"hrtsched/internal/sim"
)

// Machine is one simulated shared-memory node: an event engine, a set of
// CPUs (hardware threads), an SMI controller, an external interrupt
// controller and a GPIO port for external timing verification.
type Machine struct {
	Spec Spec
	Eng  *sim.Engine
	CPUs []*CPU
	SMI  *SMIController
	IRQ  *IRQController
	GPIO *GPIO

	rng *sim.Rand
}

// New builds a machine from a spec with all randomness derived from seed.
// CPUs receive staggered boot times and raw (uncalibrated) TSC offsets;
// the timesync package is responsible for bringing the counters into
// agreement, as the kernel does at boot (Section 3.4).
func New(spec Spec, seed uint64) *Machine {
	if spec.NumCPUs < 1 {
		panic("machine: spec with no CPUs")
	}
	m := &Machine{
		Spec: spec,
		Eng:  sim.NewEngine(),
		rng:  sim.NewRand(seed),
	}
	bootRng := m.rng.Split()
	tscRng := m.rng.Split()
	m.CPUs = make([]*CPU, spec.NumCPUs)
	for i := range m.CPUs {
		boot := sim.Time(0)
		offset := int64(0)
		if i > 0 {
			if spec.BootStaggerCycles > 0 {
				boot = sim.Time(int64(i)*spec.BootStaggerCycles/int64(spec.NumCPUs) +
					bootRng.Int63n(spec.BootStaggerCycles/4+1))
			}
			if spec.BootTSCSpreadCycles > 0 {
				offset = tscRng.Int63n(spec.BootTSCSpreadCycles)
			}
		}
		m.CPUs[i] = newCPU(m, i, boot, offset)
	}
	m.SMI = newSMIController(m, m.rng.Split())
	m.IRQ = newIRQController(m, m.rng.Split())
	m.GPIO = newGPIO(m)
	return m
}

// Now returns the current simulated wall-clock time in reference cycles.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// CPU returns hardware thread i.
func (m *Machine) CPU(i int) *CPU {
	if i < 0 || i >= len(m.CPUs) {
		panic(fmt.Sprintf("machine: no CPU %d on %s", i, m.Spec.Name))
	}
	return m.CPUs[i]
}

// NumCPUs returns the hardware thread count.
func (m *Machine) NumCPUs() int { return len(m.CPUs) }

// Rand derives a fresh deterministic random stream from the machine's root
// seed, for use by software components built on top of the machine.
func (m *Machine) Rand() *sim.Rand { return m.rng.Split() }

// OverheadJitter perturbs a nominal cost by the spec's run-to-run jitter
// percentage, using the supplied stream. The result is never negative.
func (m *Machine) OverheadJitter(rng *sim.Rand, nominal int64) int64 {
	if m.Spec.OverheadJitterPct <= 0 || nominal <= 0 {
		return nominal
	}
	span := nominal * m.Spec.OverheadJitterPct / 100
	if span <= 0 {
		return nominal
	}
	v := nominal + rng.Range(-span, span)
	if v < 0 {
		v = 0
	}
	return v
}
