package machine

import "hrtsched/internal/sim"

// SMIController injects system management interrupts: global stop-the-world
// events during which no software runs on any CPU while every cycle counter
// keeps advancing — "missing time" (Section 3.6). The firmware's SMI
// schedule is invisible to the kernel; only its effects are observable.
type SMIController struct {
	mach    *Machine
	rng     *sim.Rand
	ev      *sim.Event // persistent injection event, re-armed per gap
	enabled bool
	count   int64
	total   sim.Duration
	// Observers for experiments that need ground truth (never used by the
	// scheduler itself).
	onSMI []func(at sim.Time, d sim.Duration)
}

func newSMIController(m *Machine, rng *sim.Rand) *SMIController {
	s := &SMIController{mach: m, rng: rng}
	if m.Spec.MeanSMIGapCycles > 0 {
		s.Enable()
	}
	return s
}

// Enable starts SMI injection using the spec's gap and duration model:
// exponentially distributed gaps with the configured mean, uniform jitter
// on the duration. Calling Enable twice is a no-op.
func (s *SMIController) Enable() {
	if s.enabled {
		return
	}
	if s.mach.Spec.MeanSMIGapCycles <= 0 {
		s.mach.Spec.MeanSMIGapCycles = 40_000_000 // ~30 ms at 1.3 GHz
	}
	s.enabled = true
	s.scheduleNext()
}

// Enabled reports whether SMIs are being injected.
func (s *SMIController) Enabled() bool { return s.enabled }

// Count returns the number of SMIs that have fired.
func (s *SMIController) Count() int64 { return s.count }

// TotalMissingTime returns the cumulative duration stolen by SMIs.
func (s *SMIController) TotalMissingTime() sim.Duration { return s.total }

// Observe registers a ground-truth callback invoked at each SMI.
func (s *SMIController) Observe(fn func(at sim.Time, d sim.Duration)) {
	s.onSMI = append(s.onSMI, fn)
}

// InjectAt forces a single SMI of duration d at absolute time at,
// regardless of whether periodic injection is enabled. Used by failure-
// injection tests and the eager-vs-lazy ablation.
func (s *SMIController) InjectAt(at sim.Time, d sim.Duration) {
	s.mach.Eng.Schedule(at, sim.Hard, func(now sim.Time) {
		s.fire(now, d)
	})
}

// InjectNow fires a single SMI of duration d at the current instant. It is
// the entry point for external fault injectors (internal/fault) that drive
// their own arrival processes rather than the controller's Poisson model.
func (s *SMIController) InjectNow(d sim.Duration) {
	s.fire(s.mach.Eng.Now(), d)
}

func (s *SMIController) fire(now sim.Time, d sim.Duration) {
	s.count++
	s.total += d
	s.mach.Eng.Freeze(d)
	for _, fn := range s.onSMI {
		fn(now, d)
	}
}

func (s *SMIController) scheduleNext() {
	if s.ev == nil {
		// One persistent event drives the Poisson injection chain; each
		// firing re-arms it in place for the next gap.
		s.ev = s.mach.Eng.NewEvent(sim.Hard, func(now sim.Time) {
			if !s.enabled {
				return
			}
			d := s.mach.Spec.SMIDurationCycles
			if j := s.mach.Spec.SMIDurationJitter; j > 0 {
				d += s.rng.Range(-j, j)
			}
			if d < 0 {
				d = 0
			}
			s.fire(now, sim.Duration(d))
			s.scheduleNext()
		})
	}
	gap := sim.Duration(float64(s.mach.Spec.MeanSMIGapCycles) * s.rng.ExpFloat64())
	if gap < 1 {
		gap = 1
	}
	s.ev.RescheduleAfter(gap)
}
