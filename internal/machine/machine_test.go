package machine

import (
	"testing"
	"testing/quick"

	"hrtsched/internal/sim"
)

func TestNewMachineShape(t *testing.T) {
	m := New(PhiKNL(), 1)
	if m.NumCPUs() != 256 {
		t.Fatalf("CPUs = %d", m.NumCPUs())
	}
	if m.CPU(0).BootAt() != 0 || m.CPU(0).TSCOffset() != 0 {
		t.Fatalf("CPU 0 must define the reference clock")
	}
	seenOffset := false
	for i := 1; i < m.NumCPUs(); i++ {
		if m.CPU(i).TSCOffset() != 0 {
			seenOffset = true
		}
	}
	if !seenOffset {
		t.Fatalf("no raw TSC skew generated")
	}
}

func TestMachineDeterministicFromSeed(t *testing.T) {
	a, b := New(PhiKNL(), 9), New(PhiKNL(), 9)
	for i := 0; i < a.NumCPUs(); i++ {
		if a.CPU(i).TSCOffset() != b.CPU(i).TSCOffset() ||
			a.CPU(i).BootAt() != b.CPU(i).BootAt() {
			t.Fatalf("machines from same seed differ at CPU %d", i)
		}
	}
}

func TestTSCReadWrite(t *testing.T) {
	m := New(PhiKNL().Scaled(2), 1)
	c := m.CPU(1)
	c.WriteTSC(12345)
	if got := c.ReadTSC(); got != 12345 {
		t.Fatalf("TSC after write = %d", got)
	}
	m.Eng.Schedule(100, sim.Hard, func(sim.Time) {})
	m.Eng.RunAll(1)
	if got := c.ReadTSC(); got != 12445 {
		t.Fatalf("TSC did not advance with wall clock: %d", got)
	}
}

func TestTSCWriteRejectedWhenReadOnly(t *testing.T) {
	m := New(R415(), 1)
	defer func() {
		if recover() == nil {
			t.Fatalf("write to read-only TSC allowed")
		}
	}()
	m.CPU(1).WriteTSC(0)
}

func TestTSCCountsThroughSMI(t *testing.T) {
	spec := PhiKNL().Scaled(2)
	m := New(spec, 1)
	before := m.CPU(1).ReadTSC()
	m.SMI.InjectAt(10, 1000)
	m.Eng.Schedule(2000, sim.Hard, func(sim.Time) {})
	m.Eng.RunAll(10)
	after := m.CPU(1).ReadTSC()
	if after-before != 2000 {
		t.Fatalf("TSC advanced %d over 2000 wall cycles (constant TSC must keep counting)", after-before)
	}
	if m.SMI.TotalMissingTime() != 1000 {
		t.Fatalf("missing time = %d", m.SMI.TotalMissingTime())
	}
}

type sinkRec struct {
	vecs  []Vector
	times []sim.Time
}

func (s *sinkRec) HandleInterrupt(c *CPU, v Vector, now sim.Time) {
	s.vecs = append(s.vecs, v)
	s.times = append(s.times, now)
}

func TestOneShotTimerFires(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	c.SetOneShotTicks(10) // 10 ticks * 32 cycles
	m.Eng.RunAll(10)
	if len(rec.vecs) != 1 || rec.vecs[0] != VecTimer {
		t.Fatalf("timer did not deliver: %v", rec.vecs)
	}
	if rec.times[0] != 320 {
		t.Fatalf("timer at %d, want 320", rec.times[0])
	}
}

func TestOneShotNanosConservative(t *testing.T) {
	// The programmed countdown must never exceed the requested delay
	// (resolution mismatch => earlier invocation, never later).
	m := New(PhiKNL().Scaled(1), 1)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	f := func(nsRaw uint16) bool {
		ns := int64(nsRaw) + 100
		rec.times = rec.times[:0]
		rec.vecs = rec.vecs[:0]
		start := m.Eng.Now()
		c.SetOneShotNanos(ns)
		m.Eng.RunAll(1 << 20)
		if len(rec.times) != 1 {
			return false
		}
		elapsed := rec.times[0] - start
		requested := sim.NanosToCycles(ns, m.Spec.FreqHz)
		return elapsed <= requested+sim.Time(m.Spec.APICTickCycles) && elapsed >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerReplacedNotDuplicated(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	c.SetOneShotTicks(100)
	c.SetOneShotTicks(5) // replaces
	m.Eng.RunAll(10)
	if len(rec.vecs) != 1 {
		t.Fatalf("%d timer interrupts, want 1", len(rec.vecs))
	}
}

func TestPriorityHoldsAndDrains(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	c.SetPriority(SchedPriority)
	dev := Vector(0x40) // class 4 < SchedPriority: held
	c.RaiseInterrupt(dev)
	c.RaiseInterrupt(dev) // duplicate merges (IRR semantics)
	if len(rec.vecs) != 0 || c.PendingCount() != 1 {
		t.Fatalf("device interrupt not held: delivered=%d pending=%d", len(rec.vecs), c.PendingCount())
	}
	c.RaiseInterrupt(VecTimer) // class 15 > 14: delivered through
	if len(rec.vecs) != 1 || rec.vecs[0] != VecTimer {
		t.Fatalf("scheduling interrupt blocked by priority")
	}
	c.SetPriority(0)
	if len(rec.vecs) != 2 || rec.vecs[1] != dev {
		t.Fatalf("held interrupt not drained on priority drop: %v", rec.vecs)
	}
}

func TestIPIDelivery(t *testing.T) {
	m := New(PhiKNL().Scaled(2), 1)
	rec := &sinkRec{}
	m.CPU(1).SetSink(rec)
	m.CPU(0).SendIPI(m.CPU(1), VecKick)
	m.Eng.RunAll(10)
	if len(rec.vecs) != 1 || rec.vecs[0] != VecKick {
		t.Fatalf("IPI not delivered: %v", rec.vecs)
	}
	if rec.times[0] != sim.Time(m.Spec.IPILatencyCycles) {
		t.Fatalf("IPI latency %d, want %d", rec.times[0], m.Spec.IPILatencyCycles)
	}
}

func TestDeviceSteering(t *testing.T) {
	m := New(PhiKNL().Scaled(4), 1)
	d := m.IRQ.AddDevice("nic", 0, 5000)
	if d.Target() != 0 {
		t.Fatalf("device not steered to CPU 0 by default")
	}
	if m.IRQ.InterruptFree(0) || !m.IRQ.InterruptFree(2) {
		t.Fatalf("default partition wrong")
	}
	rec := &sinkRec{}
	m.CPU(2).SetSink(rec)
	m.IRQ.Steer(d, 2)
	d.Raise()
	if len(rec.vecs) != 1 {
		t.Fatalf("steered interrupt not delivered to CPU 2")
	}
	if m.IRQ.InterruptFree(2) {
		t.Fatalf("CPU 2 should now be interrupt-laden")
	}
}

func TestDeviceAutonomousGeneration(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	rec := &sinkRec{}
	m.CPU(0).SetSink(rec)
	d := m.IRQ.AddDevice("nic", 10_000, 1000)
	m.Eng.Run(1_000_000)
	if d.Raised() < 20 {
		t.Fatalf("autonomous device produced only %d interrupts", d.Raised())
	}
	if int64(len(rec.vecs)) != d.Raised() {
		t.Fatalf("delivered %d != raised %d", len(rec.vecs), d.Raised())
	}
	d.Stop()
	n := d.Raised()
	m.Eng.Run(2_000_000)
	if d.Raised() != n {
		t.Fatalf("device kept firing after Stop")
	}
}

func TestSMIRateAndObservation(t *testing.T) {
	spec := PhiKNL().Scaled(1)
	spec.MeanSMIGapCycles = 100_000
	spec.SMIDurationCycles = 1_000
	spec.SMIDurationJitter = 0
	m := New(spec, 5)
	var observed int
	m.SMI.Observe(func(at sim.Time, d sim.Duration) { observed++ })
	m.Eng.Schedule(10_000_000, sim.Hard, func(sim.Time) {})
	m.Eng.Run(10_000_000)
	if m.SMI.Count() < 50 || m.SMI.Count() > 200 {
		t.Fatalf("SMI count %d far from expected ~100", m.SMI.Count())
	}
	if int64(observed) != m.SMI.Count() {
		t.Fatalf("observer saw %d of %d", observed, m.SMI.Count())
	}
	if m.SMI.TotalMissingTime() != sim.Duration(m.SMI.Count()*1000) {
		t.Fatalf("missing time accounting off")
	}
}

func TestGPIOEdges(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	g := m.GPIO
	g.SetPin(0, true)
	m.Eng.Schedule(100, sim.Hard, func(sim.Time) { g.SetPin(0, false) })
	m.Eng.Schedule(200, sim.Hard, func(sim.Time) { g.SetPin(1, true) })
	m.Eng.RunAll(10)
	edges := g.PinEdges(0)
	if len(edges) != 2 || !edges[0].High || edges[1].High {
		t.Fatalf("pin 0 edges wrong: %+v", edges)
	}
	if edges[1].At != 100 {
		t.Fatalf("falling edge at %d", edges[1].At)
	}
	if len(g.PinEdges(1)) != 1 {
		t.Fatalf("pin 1 edges wrong")
	}
	if g.Pins() != 0b10 {
		t.Fatalf("pin state %b", g.Pins())
	}
	// Writing the same value records nothing.
	n := len(g.Edges())
	g.Write(g.Pins())
	if len(g.Edges()) != n {
		t.Fatalf("no-op write recorded an edge")
	}
}

func TestOverheadJitterBounds(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 1)
	rng := m.Rand()
	f := func(nomRaw uint16) bool {
		nom := int64(nomRaw) + 1
		v := m.OverheadJitter(rng, nom)
		span := nom * m.Spec.OverheadJitterPct / 100
		return v >= nom-span && v <= nom+span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecHelpers(t *testing.T) {
	s := PhiKNL()
	if s.TotalSchedCycles() != 1100+450+3200+1250 {
		t.Fatalf("TotalSchedCycles = %d", s.TotalSchedCycles())
	}
	if s.MicrosToCycles(10) != 13000 {
		t.Fatalf("10us = %d cycles, want 13000", s.MicrosToCycles(10))
	}
	if s.CyclesToNanos(13000) != 10000 {
		t.Fatalf("13000 cycles = %d ns", s.CyclesToNanos(13000))
	}
	if PhiKNL().Scaled(4).NumCPUs != 4 {
		t.Fatalf("Scaled failed")
	}
}

func TestTSCDeadlineModeExact(t *testing.T) {
	spec := PhiKNL().Scaled(1)
	spec.TSCDeadline = true
	m := New(spec, 21)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	// In TSC-deadline mode the countdown is exact to the cycle, with no
	// tick-granularity earliness.
	c.SetOneShotNanos(10_000) // 13,000 cycles exactly at 1.3 GHz
	m.Eng.RunAll(10)
	if len(rec.times) != 1 || rec.times[0] != 13_000 {
		t.Fatalf("TSC-deadline fire at %v, want exactly 13000", rec.times)
	}
}

func TestRetireStaleTimerOnRearm(t *testing.T) {
	m := New(PhiKNL().Scaled(1), 22)
	c := m.CPU(0)
	rec := &sinkRec{}
	c.SetSink(rec)
	// Mask, let a fire go pending, then re-arm: the stale fire must be
	// retired, and only the new programming delivers.
	c.SetPriority(0xF)
	c.SetOneShotTicks(1)
	m.Eng.Run(m.Eng.Now() + 100)
	if c.PendingCount() != 1 {
		t.Fatalf("fire not held pending under mask")
	}
	c.SetOneShotTicks(10)
	if c.PendingCount() != 0 {
		t.Fatalf("stale fire not retired on re-arm")
	}
	c.SetPriority(0)
	if len(rec.vecs) != 0 {
		t.Fatalf("stale fire delivered: %v", rec.vecs)
	}
	m.Eng.RunAll(10)
	if len(rec.vecs) != 1 {
		t.Fatalf("new programming delivered %d fires", len(rec.vecs))
	}
}

func TestSetLadenPartition(t *testing.T) {
	m := New(PhiKNL().Scaled(8), 23)
	d := m.IRQ.AddDevice("nic", 0, 1000)
	m.IRQ.SetLadenPartition([]int{3, 5})
	if m.IRQ.InterruptFree(3) || m.IRQ.InterruptFree(5) {
		t.Fatalf("laden CPUs reported interrupt-free")
	}
	if !m.IRQ.InterruptFree(0) || !m.IRQ.InterruptFree(7) {
		t.Fatalf("non-laden CPUs reported laden")
	}
	if d.Target() != 3 {
		t.Fatalf("device not re-steered to first laden CPU: %d", d.Target())
	}
	rec := &sinkRec{}
	m.CPU(3).SetSink(rec)
	d.Raise()
	if len(rec.vecs) != 1 {
		t.Fatalf("interrupt not delivered to new partition")
	}
	if m.IRQ.SourceByVector(d.Vector) != d {
		t.Fatalf("SourceByVector lookup broken")
	}
	if m.IRQ.SourceByVector(0x7f) != nil {
		t.Fatalf("unknown vector resolved")
	}
}
