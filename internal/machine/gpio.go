package machine

import "hrtsched/internal/sim"

// GPIO models the parallel-port interface the paper adds for external
// verification (Section 5.2): a single outb changes all 8 output pins, and
// an external oscilloscope observes the transitions in true wall-clock
// time — which is exactly what the simulation's reference clock is.
type GPIO struct {
	mach  *Machine
	pins  uint8
	edges []Edge
	limit int
}

// Edge is one recorded pin-state transition.
type Edge struct {
	At   sim.Time // true wall-clock time of the outb
	Pins uint8    // new pin state
	Prev uint8    // previous pin state
}

func newGPIO(m *Machine) *GPIO {
	return &GPIO{mach: m, limit: 1 << 22}
}

// Write performs an outb: all 8 pins assume the new value and the
// transition is recorded with its true wall-clock timestamp.
func (g *GPIO) Write(pins uint8) {
	if pins == g.pins {
		return
	}
	if len(g.edges) < g.limit {
		g.edges = append(g.edges, Edge{At: g.mach.Eng.Now(), Pins: pins, Prev: g.pins})
	}
	g.pins = pins
}

// SetPin sets or clears a single pin (0-7), leaving the others unchanged.
func (g *GPIO) SetPin(pin uint, high bool) {
	if pin > 7 {
		panic("machine: GPIO pin out of range")
	}
	p := g.pins
	if high {
		p |= 1 << pin
	} else {
		p &^= 1 << pin
	}
	g.Write(p)
}

// Pins returns the current pin state.
func (g *GPIO) Pins() uint8 { return g.pins }

// Edges returns all recorded transitions in time order.
func (g *GPIO) Edges() []Edge { return g.edges }

// Reset clears the recording without changing the pin state.
func (g *GPIO) Reset() { g.edges = g.edges[:0] }

// PinEdges extracts the rising/falling transitions of a single pin as
// (time, high) pairs, the form the scope package analyzes.
func (g *GPIO) PinEdges(pin uint) []PinEdge {
	if pin > 7 {
		panic("machine: GPIO pin out of range")
	}
	var out []PinEdge
	mask := uint8(1) << pin
	for _, e := range g.edges {
		was := e.Prev&mask != 0
		is := e.Pins&mask != 0
		if was != is {
			out = append(out, PinEdge{At: e.At, High: is})
		}
	}
	return out
}

// PinEdge is one transition of a single pin.
type PinEdge struct {
	At   sim.Time
	High bool
}
