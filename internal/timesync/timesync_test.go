package timesync

import (
	"testing"
	"testing/quick"

	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

func TestCalibrationTightensPhi(t *testing.T) {
	spec := machine.PhiKNL()
	m := machine.New(spec, 3)
	// Raw offsets are tens of millions of cycles.
	var rawMax int64
	for i := 1; i < m.NumCPUs(); i++ {
		off := m.CPU(i).TSCOffset()
		if off < 0 {
			off = -off
		}
		if off > rawMax {
			rawMax = off
		}
	}
	if rawMax < 1_000_000 {
		t.Fatalf("raw spread suspiciously small: %d", rawMax)
	}
	r := Calibrate(m, sim.NewRand(7))
	if r.MaxResidual() > 1100 {
		t.Fatalf("post-calibration residual %d > 1100 cycles", r.MaxResidual())
	}
	if r.MaxResidual() == 0 {
		t.Fatalf("zero residual is unrealistically perfect")
	}
	// Writable platform: software offsets folded into the counters.
	for i, off := range r.SoftOffset {
		if off != 0 {
			t.Fatalf("CPU %d retains software offset %d on writable-TSC platform", i, off)
		}
	}
	if m.Eng.Now() < r.DoneAt {
		t.Fatalf("engine not advanced past calibration")
	}
}

func TestCalibrationSoftwareCompensationR415(t *testing.T) {
	spec := machine.R415()
	m := machine.New(spec, 4)
	r := Calibrate(m, sim.NewRand(8))
	if r.MaxResidual() > 800 {
		t.Fatalf("residual %d too large", r.MaxResidual())
	}
	nonzero := false
	for _, off := range r.SoftOffset[1:] {
		if off != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatalf("read-only TSC platform must use software compensation")
	}
}

func TestClockAgreementAcrossCPUs(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(16), 5)
	r := Calibrate(m, sim.NewRand(9))
	clocks := make([]*Clock, 16)
	for i := range clocks {
		clocks[i] = NewClock(m.CPU(i), r)
	}
	// Advance and compare wall-clock estimates.
	m.Eng.Schedule(m.Eng.Now()+1_000_000, sim.Hard, func(sim.Time) {})
	m.Eng.RunAll(2)
	ref := clocks[0].NowCycles()
	for i, c := range clocks {
		d := c.NowCycles() - ref
		if d < 0 {
			d = -d
		}
		if d > 1100 {
			t.Fatalf("CPU %d wall estimate off by %d cycles", i, d)
		}
	}
}

func TestClockConversions(t *testing.T) {
	m := machine.New(machine.PhiKNL().Scaled(1), 6)
	c := NewClock(m.CPU(0), nil)
	if c.NanosToCycles(10_000) != 13_000 {
		t.Fatalf("10us = %d cycles", c.NanosToCycles(10_000))
	}
	if c.CyclesToNanos(13_000) != 10_000 {
		t.Fatalf("13000 cycles = %d ns", c.CyclesToNanos(13_000))
	}
	if c.NowNanos() != 0 {
		t.Fatalf("t0 NowNanos = %d", c.NowNanos())
	}
}

// Property: calibration residuals shrink as measurement error shrinks, and
// are zero when measurement and write-back are perfect.
func TestPropertyPerfectMeasurementPerfectSync(t *testing.T) {
	f := func(seed uint64) bool {
		spec := machine.PhiKNL().Scaled(32)
		spec.CalibReadErrCycles = 0
		spec.CalibWriteErrCycles = 0
		m := machine.New(spec, seed)
		r := Calibrate(m, sim.NewRand(seed+1))
		return r.MaxResidual() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	run := func() int64 {
		m := machine.New(machine.PhiKNL().Scaled(64), 11)
		return Calibrate(m, sim.NewRand(12)).MaxResidual()
	}
	if run() != run() {
		t.Fatalf("calibration not deterministic")
	}
}
