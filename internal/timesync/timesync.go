// Package timesync implements the boot-time cross-CPU cycle-counter
// calibration of Section 3.4. The kernel starts booting on each CPU at a
// slightly different time, so the raw TSC values disagree; a barrier-like
// handshake estimates each CPU's phase relative to CPU 0 (which defines
// wall-clock time), and on machines that support it the counters are
// written back with predicted values. Both the measurement and the
// write-back have instruction-sequence granularity, so a residual error
// remains — the quantity Figure 3 histograms.
package timesync

import (
	"hrtsched/internal/machine"
	"hrtsched/internal/sim"
)

// Result summarizes one calibration pass.
type Result struct {
	// SoftOffset is the per-CPU software compensation (in cycles) that a
	// local scheduler subtracts from its TSC to estimate wall-clock time.
	// On machines with writable TSCs the write-back absorbs the estimate
	// and SoftOffset is zero.
	SoftOffset []int64
	// Residual is the ground-truth post-calibration disagreement of each
	// CPU's wall-clock estimate with CPU 0's, in cycles. Kernel code cannot
	// observe it; tests and Figure 3 can.
	Residual []int64
	// DoneAt is the simulated time calibration finished on all CPUs.
	DoneAt sim.Time
	// Rounds is the number of handshake rounds used per CPU.
	Rounds int
}

// handshakeCostCycles is the per-round cost of one cross-CPU offset
// measurement (two cache-line bounces plus serializing reads).
const handshakeCostCycles = 4_000

// Calibrate runs the boot-time calibration protocol on m, advancing the
// machine's clock past the end of the slowest CPU's participation. The rng
// supplies the measurement and write-back errors.
func Calibrate(m *machine.Machine, rng *sim.Rand) *Result {
	spec := m.Spec
	n := m.NumCPUs()
	res := &Result{
		SoftOffset: make([]int64, n),
		Residual:   make([]int64, n),
		Rounds:     spec.CalibRounds,
	}
	if res.Rounds < 1 {
		res.Rounds = 1
	}

	ref := m.CPU(0)
	var latestBoot sim.Time
	for i := 0; i < n; i++ {
		if b := m.CPU(i).BootAt(); b > latestBoot {
			latestBoot = b
		}
	}

	for i := 1; i < n; i++ {
		cpu := m.CPU(i)
		trueOffset := cpu.ReadTSC() - ref.ReadTSC()
		// Each handshake round observes the true offset corrupted by the
		// granularity of the measuring instruction sequence.
		var sum int64
		for r := 0; r < res.Rounds; r++ {
			err := int64(0)
			if spec.CalibReadErrCycles > 0 {
				err = rng.Range(-spec.CalibReadErrCycles, spec.CalibReadErrCycles)
			}
			sum += trueOffset + err
		}
		est := sum / int64(res.Rounds)
		if spec.TSCWritable {
			// Predictive write-back: set this CPU's counter to what the
			// reference counter will read, modulo write granularity.
			werr := int64(0)
			if spec.CalibWriteErrCycles > 0 {
				werr = rng.Range(0, spec.CalibWriteErrCycles)
			}
			cpu.WriteTSC(cpu.ReadTSC() - est + werr)
			res.SoftOffset[i] = 0
		} else {
			res.SoftOffset[i] = est
		}
	}

	// Ground truth residuals: the disagreement between each CPU's corrected
	// wall-clock estimate and CPU 0's.
	for i := 0; i < n; i++ {
		cpu := m.CPU(i)
		d := (cpu.ReadTSC() - res.SoftOffset[i]) - ref.ReadTSC()
		if d < 0 {
			d = -d
		}
		res.Residual[i] = d
	}

	// Calibration occupies the boot path: everyone reaches the barrier, then
	// rounds proceed. Advance simulated time accordingly.
	cost := sim.Duration(int64(res.Rounds) * handshakeCostCycles * int64(n))
	res.DoneAt = latestBoot + cost
	if m.Eng.Now() < res.DoneAt {
		m.Eng.Run(res.DoneAt)
	}
	return res
}

// MaxResidual returns the largest ground-truth residual in cycles.
func (r *Result) MaxResidual() int64 {
	var max int64
	for _, v := range r.Residual {
		if v > max {
			max = v
		}
	}
	return max
}

// Clock is a per-CPU wall-clock estimator: the scheduler's only view of
// time. It reads the CPU's (possibly written-back) TSC, applies the
// software compensation, and converts to nanoseconds held in an int64 —
// "at least three digit precision ... and no overflows on a 2 GHz machine
// for a duration exceeding its lifetime" (Section 3.3).
type Clock struct {
	cpu        *machine.CPU
	softOffset int64
	freqHz     int64
}

// NewClock builds the wall clock for cpu from a calibration result.
func NewClock(cpu *machine.CPU, r *Result) *Clock {
	off := int64(0)
	if r != nil {
		off = r.SoftOffset[cpu.ID()]
	}
	return &Clock{cpu: cpu, softOffset: off, freqHz: cpu.Machine().Spec.FreqHz}
}

// NowCycles returns the estimated wall-clock time in cycles.
func (c *Clock) NowCycles() int64 { return c.cpu.ReadTSC() - c.softOffset }

// NowNanos returns the estimated wall-clock time in nanoseconds.
func (c *Clock) NowNanos() int64 {
	return sim.CyclesToNanos(sim.Time(c.NowCycles()), c.freqHz)
}

// NanosToCycles converts a nanosecond span to cycles at the calibrated
// frequency, truncating.
func (c *Clock) NanosToCycles(ns int64) int64 {
	return int64(sim.NanosToCycles(ns, c.freqHz))
}

// CyclesToNanos converts cycles to nanoseconds at the calibrated frequency.
func (c *Clock) CyclesToNanos(cy int64) int64 {
	return sim.CyclesToNanos(sim.Time(cy), c.freqHz)
}
