package sim

import "container/heap"

// EventClass distinguishes hardware from software events. Hardware events
// (timer expiry, interrupt delivery) occur at fixed wall-clock instants and
// are unaffected by SMIs except that their handling is deferred until the
// freeze ends. Software events (completion of a compute burst, end of a
// scheduler pass) represent CPU execution and therefore slip by the full
// duration of any overlapping freeze.
type EventClass uint8

const (
	// Hard events model hardware that keeps counting during an SMI.
	Hard EventClass = iota
	// Soft events model software execution that stops during an SMI.
	Soft
)

// Handler is an event callback. It receives the simulated time at which the
// event is being handled, which for hard events deferred by a freeze may be
// later than the time the event was scheduled for.
type Handler func(now Time)

// Event is a scheduled occurrence in the simulation. Events are created via
// Engine.Schedule* and may be cancelled until they fire.
type Event struct {
	at      Time
	seq     uint64
	class   EventClass
	fn      Handler
	index   int // heap index, -1 once popped or cancelled
	engine  *Engine
	cancled bool
}

// At reports the time the event is currently scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e.cancled }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e.cancled || e.index < 0 {
		e.cancled = true
		return
	}
	e.cancled = true
	heap.Remove(&e.engine.queue, e.index)
	e.index = -1
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; parallelism in this repository always lives one level up,
// with many independent Engines running on separate goroutines.
type Engine struct {
	queue       eventQueue
	now         Time
	seq         uint64
	frozenUntil Time
	missingTime Duration // cumulative SMI freeze time observed so far
	steps       uint64
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events handled so far.
func (e *Engine) Steps() uint64 { return e.steps }

// MissingTime returns the cumulative duration of all freezes (SMIs) that
// have occurred so far.
func (e *Engine) MissingTime() Duration { return e.missingTime }

// FrozenUntil returns the end of the current freeze interval, or a time in
// the past if the platform is not frozen.
func (e *Engine) FrozenUntil() Time { return e.frozenUntil }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at time at with the given class. It panics if
// at precedes the current time.
func (e *Engine) Schedule(at Time, class EventClass, fn Handler) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, class: class, fn: fn, engine: e}
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run d cycles from now.
func (e *Engine) After(d Duration, class EventClass, fn Handler) *Event {
	return e.Schedule(e.now+d, class, fn)
}

// Freeze models an SMI: all software progress stops for d cycles starting
// now. Every pending soft event slips by d; hard events are untouched but
// will be handled no earlier than the freeze end. Nested freezes extend the
// current one.
func (e *Engine) Freeze(d Duration) {
	if d <= 0 {
		return
	}
	end := e.now + d
	if e.frozenUntil > e.now {
		// Overlapping SMI: extend. The incremental slip is the extension.
		d = end - e.frozenUntil
		if d <= 0 {
			return
		}
		end = e.frozenUntil + d
	}
	e.frozenUntil = end
	e.missingTime += d
	for _, ev := range e.queue {
		if ev.class == Soft {
			ev.at += d
		}
	}
	heap.Init(&e.queue)
}

// peek discards cancelled events from the head of the queue and returns the
// next live event, or nil if none remain.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 && e.queue[0].cancled {
		heap.Pop(&e.queue)
	}
	if len(e.queue) == 0 {
		return nil
	}
	return e.queue[0]
}

// Step handles the next event, advancing the clock. It returns false when
// the queue is empty. Hard events scheduled inside a freeze window are
// deferred to the freeze end before their handler runs.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancled {
			continue
		}
		at := ev.at
		if ev.class == Hard && at < e.frozenUntil {
			// Hardware fired during an SMI; handling waits for the freeze
			// to end. Requeue at the deferred time so ordering with other
			// deferred events stays stable.
			ev.at = e.frozenUntil
			e.seq++
			ev.seq = e.seq
			heap.Push(&e.queue, ev)
			continue
		}
		if at < e.now {
			panic("sim: time went backwards")
		}
		e.now = at
		e.steps++
		ev.fn(at)
		return true
	}
	return false
}

// Run handles events until the queue is empty or the clock passes until.
// Events at exactly until are handled. It returns the number of events
// handled.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for {
		head := e.peek()
		if head == nil {
			break
		}
		next := head.at
		if head.class == Hard && next < e.frozenUntil {
			next = e.frozenUntil
		}
		if next > until {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	} else if e.now < until {
		// Next event is beyond until; advance the clock to until so callers
		// see a consistent stopping time.
		e.now = until
	}
	return n
}

// RunAll handles events until the queue is empty, with a safety bound on the
// number of events to keep runaway simulations from spinning forever. It
// panics if the bound is exceeded.
func (e *Engine) RunAll(maxEvents uint64) uint64 {
	var n uint64
	for e.Step() {
		n++
		if n > maxEvents {
			panic("sim: event bound exceeded; simulation is not terminating")
		}
	}
	return n
}
