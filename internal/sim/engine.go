package sim

// EventClass distinguishes hardware from software events. Hardware events
// (timer expiry, interrupt delivery) occur at fixed wall-clock instants and
// are unaffected by SMIs except that their handling is deferred until the
// freeze ends. Software events (completion of a compute burst, end of a
// scheduler pass) represent CPU execution and therefore slip by the full
// duration of any overlapping freeze.
type EventClass uint8

const (
	// Hard events model hardware that keeps counting during an SMI.
	Hard EventClass = iota
	// Soft events model software execution that stops during an SMI.
	Soft
)

// Handler is an event callback. It receives the simulated time at which the
// event is being handled, which for hard events deferred by a freeze may be
// later than the time the event was scheduled for.
type Handler func(now Time)

// Event is a scheduled occurrence in the simulation: an intrusive node in
// one of the engine's two class heaps plus, for pooled events, a free-list
// link.
//
// Ownership contract: events returned by Schedule/After are pooled — the
// engine reclaims them once they fire or once their cancellation is
// collected, after which the object may be reused for an unrelated later
// Schedule. Callers may hold the pointer only until the event fires or
// they cancel it; Cancel before firing is always safe, but a retained
// pointer must not be used (Cancel, Reschedule, At) after the handler has
// run. Call sites that re-arm across firings hold a persistent event from
// NewEvent instead, which is never pooled and may be Rescheduled freely.
type Event struct {
	// key orders the event within its class heap. For hard events it is
	// the absolute firing time. For soft events it is slip-relative:
	// scheduled-at minus the cumulative SMI missing time observed when the
	// event was (re)scheduled, so that effective time = key + missingTime.
	// A freeze then shifts every pending soft event at once by advancing
	// missingTime — O(1) instead of the former rescan-and-reheapify.
	key       Time
	seq       uint64
	fn        Handler
	engine    *Engine
	next      *Event // free-list link while pooled and idle
	index     int32  // position in its class heap, -1 when not queued
	class     EventClass
	cancelled bool
	pooled    bool
}

// At reports the time the event is currently scheduled for (including SMI
// slip accumulated so far, and deferral for frozen hard events). It is
// meaningful only while the caller still owns the event.
func (ev *Event) At() Time {
	if ev.class == Soft {
		return ev.key + Time(ev.engine.missingTime)
	}
	return ev.key
}

// Cancelled reports whether Cancel was called before the event fired.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Armed reports whether the event is queued to fire.
func (ev *Event) Armed() bool { return ev.index >= 0 && !ev.cancelled }

// Cancel removes the event from the queue. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancellation is lazy: the
// event is tombstoned in place and collected when it reaches the head of
// its heap or at the next compaction, so Cancel is O(1).
func (ev *Event) Cancel() {
	if ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index < 0 {
		return
	}
	e := ev.engine
	e.live--
	e.tombstones++
	e.maybeCompact()
}

// Reschedule arms the event to fire at time at, assigning it a fresh
// sequence number exactly as a new Schedule would. It works in place: a
// queued event (cancelled or not) is re-keyed and fixed within its heap, an
// idle persistent event is pushed. It panics if at precedes the current
// time, or when called on a pooled event that already fired (the object is
// no longer owned by the caller).
func (ev *Event) Reschedule(at Time) {
	e := ev.engine
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	key := at
	if ev.class == Soft {
		key -= Time(e.missingTime)
	}
	ev.seq = e.seq
	if ev.index >= 0 {
		if ev.cancelled {
			ev.cancelled = false
			e.live++
			e.tombstones--
		}
		ev.key = key
		e.heapFor(ev).fix(int(ev.index))
		return
	}
	if ev.pooled {
		panic("sim: Reschedule on a pooled event after it fired")
	}
	ev.cancelled = false
	ev.key = key
	e.heapFor(ev).push(ev)
	e.live++
}

// RescheduleAfter arms the event to fire d cycles from now.
func (ev *Event) RescheduleAfter(d Duration) {
	ev.Reschedule(ev.engine.now + d)
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; parallelism in this repository always lives one level up,
// with many independent Engines running on separate goroutines.
//
// Events live in two intrusive 4-ary min-heaps, one per class. Hard events
// are keyed on absolute time; soft events on slip-relative time (see
// Event.key), which makes Freeze O(1). The next event overall is the
// smaller of the two heads under (effective time, seq) — seq is globally
// unique across both heaps, so the order is total and identical to the
// former single-queue implementation.
type Engine struct {
	hard        eventHeap
	soft        eventHeap
	now         Time
	seq         uint64
	frozenUntil Time
	missingTime Duration // cumulative SMI freeze time observed so far
	steps       uint64
	live        int    // queued, non-cancelled events
	tombstones  int    // cancelled events still occupying heap slots
	free        *Event // pooled events awaiting reuse
}

// NewEngine returns an engine with the clock at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events handled so far.
func (e *Engine) Steps() uint64 { return e.steps }

// MissingTime returns the cumulative duration of all freezes (SMIs) that
// have occurred so far.
func (e *Engine) MissingTime() Duration { return e.missingTime }

// FrozenUntil returns the end of the current freeze interval, or a time in
// the past if the platform is not frozen.
func (e *Engine) FrozenUntil() Time { return e.frozenUntil }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.live }

func (e *Engine) heapFor(ev *Event) *eventHeap {
	if ev.class == Soft {
		return &e.soft
	}
	return &e.hard
}

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *Event {
	if ev := e.free; ev != nil {
		e.free = ev.next
		ev.next = nil
		return ev
	}
	return &Event{engine: e, index: -1}
}

// release returns a collected pooled event to the free list; persistent
// events are simply left unqueued.
func (e *Engine) release(ev *Event) {
	if !ev.pooled {
		return
	}
	ev.fn = nil
	ev.next = e.free
	e.free = ev
}

// Schedule enqueues fn to run at time at with the given class. It panics if
// at precedes the current time. The returned event is pooled: see the
// ownership contract on Event.
func (e *Engine) Schedule(at Time, class EventClass, fn Handler) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.class = class
	ev.fn = fn
	ev.pooled = true
	ev.cancelled = false
	e.seq++
	ev.seq = e.seq
	if class == Soft {
		ev.key = at - Time(e.missingTime)
		e.soft.push(ev)
	} else {
		ev.key = at
		e.hard.push(ev)
	}
	e.live++
	return ev
}

// After enqueues fn to run d cycles from now.
func (e *Engine) After(d Duration, class EventClass, fn Handler) *Event {
	return e.Schedule(e.now+d, class, fn)
}

// NewEvent returns an idle persistent event bound to class and fn. It is
// not queued until Reschedule is called, never enters the pool, and may be
// re-armed (Reschedule) or disarmed (Cancel) any number of times —
// including from inside its own handler. This is the allocation-free
// re-arm primitive behind one-shot timers, device interrupt sources and
// the other steady-state churn sites.
func (e *Engine) NewEvent(class EventClass, fn Handler) *Event {
	return &Event{engine: e, class: class, fn: fn, index: -1}
}

// Freeze models an SMI: all software progress stops for d cycles starting
// now. Every pending soft event slips by d; hard events are untouched but
// will be handled no earlier than the freeze end. Nested freezes extend the
// current one. Because soft events are keyed slip-relative, the whole
// shift is the two counter updates below — O(1) regardless of queue size.
func (e *Engine) Freeze(d Duration) {
	if d <= 0 {
		return
	}
	end := e.now + d
	if e.frozenUntil > e.now {
		// Overlapping SMI: extend. The incremental slip is the extension.
		d = end - e.frozenUntil
		if d <= 0 {
			return
		}
		end = e.frozenUntil + d
	}
	e.frozenUntil = end
	e.missingTime += d
}

// maybeCompact rebuilds the heaps once cancelled events outnumber live
// ones (and are numerous enough to matter), bounding the memory and
// pop-skip cost of lazy cancellation.
func (e *Engine) maybeCompact() {
	const minTombstones = 64
	if e.tombstones >= minTombstones && e.tombstones > e.live {
		e.hard.compact(e)
		e.soft.compact(e)
		e.tombstones = 0
	}
}

// collectHeads discards cancelled events sitting at either heap head so
// the heads are live (or the heaps empty).
func (e *Engine) collectHeads() {
	for {
		hh := e.hard.head()
		if hh == nil || !hh.cancelled {
			break
		}
		e.hard.popMin()
		e.tombstones--
		e.release(hh)
	}
	for {
		sh := e.soft.head()
		if sh == nil || !sh.cancelled {
			break
		}
		e.soft.popMin()
		e.tombstones--
		e.release(sh)
	}
}

// popNext removes and returns the next live event in (effective time, seq)
// order across both heaps, or nil if none remain. Hard events are compared
// at their stored (pre-deferral) key, exactly as the single-queue
// implementation did; deferral happens in Step.
func (e *Engine) popNext() *Event {
	e.collectHeads()
	hh, sh := e.hard.head(), e.soft.head()
	if hh == nil && sh == nil {
		return nil
	}
	var ev *Event
	switch {
	case sh == nil:
		ev = e.hard.popMin()
	case hh == nil:
		ev = e.soft.popMin()
	default:
		sa := sh.key + Time(e.missingTime)
		if hh.key < sa || (hh.key == sa && hh.seq < sh.seq) {
			ev = e.hard.popMin()
		} else {
			ev = e.soft.popMin()
		}
	}
	e.live--
	return ev
}

// Step handles the next event, advancing the clock. It returns false when
// the queue is empty. Hard events scheduled inside a freeze window are
// deferred to the freeze end before their handler runs.
func (e *Engine) Step() bool {
	for {
		ev := e.popNext()
		if ev == nil {
			return false
		}
		if ev.class == Hard && ev.key < e.frozenUntil {
			// Hardware fired during an SMI; handling waits for the freeze
			// to end. Requeue at the deferred time with a fresh sequence
			// number so ordering with other deferred events stays stable.
			ev.key = e.frozenUntil
			e.seq++
			ev.seq = e.seq
			e.hard.push(ev)
			e.live++
			continue
		}
		at := ev.key
		if ev.class == Soft {
			at += Time(e.missingTime)
		}
		if at < e.now {
			panic("sim: time went backwards")
		}
		e.now = at
		e.steps++
		ev.fn(at)
		// Reclaim the event unless the handler re-armed it (persistent
		// events rescheduling themselves).
		if ev.pooled && ev.index < 0 {
			e.release(ev)
		}
		return true
	}
}

// nextAt reports the effective handling time of the next live event
// (accounting for hard-event deferral), or false if the queue is empty.
func (e *Engine) nextAt() (Time, bool) {
	e.collectHeads()
	hh, sh := e.hard.head(), e.soft.head()
	if hh == nil && sh == nil {
		return 0, false
	}
	head := hh
	switch {
	case hh == nil:
		head = sh
	case sh == nil:
	default:
		sa := sh.key + Time(e.missingTime)
		if !(hh.key < sa || (hh.key == sa && hh.seq < sh.seq)) {
			head = sh
		}
	}
	at := head.key
	if head.class == Soft {
		at += Time(e.missingTime)
	} else if at < e.frozenUntil {
		at = e.frozenUntil
	}
	return at, true
}

// Run handles events until the queue is empty or the clock passes until.
// Events at exactly until are handled. It returns the number of events
// handled.
func (e *Engine) Run(until Time) uint64 {
	var n uint64
	for {
		next, ok := e.nextAt()
		if !ok || next > until {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	// Advance the clock to until (the queue is drained or its head lies
	// beyond) so callers see a consistent stopping time.
	if e.now < until {
		e.now = until
	}
	return n
}

// RunAll handles events until the queue is empty, with a safety bound on the
// number of events to keep runaway simulations from spinning forever. It
// panics if the bound is exceeded.
func (e *Engine) RunAll(maxEvents uint64) uint64 {
	var n uint64
	for e.Step() {
		n++
		if n > maxEvents {
			panic("sim: event bound exceeded; simulation is not terminating")
		}
	}
	return n
}
