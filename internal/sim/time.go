// Package sim provides the deterministic discrete-event simulation engine
// that underlies the reproduced hardware platform and scheduler stack.
//
// Simulated time is measured in integer cycles of the modelled machine's
// nominal clock. Two event classes exist: hard events model hardware that
// keeps running during SMIs (timers, interrupt delivery), while soft events
// model software execution, which loses "missing time" when the platform
// freezes (see the paper's Section 3.6).
package sim

import "math/bits"

// Time is a point in simulated time, measured in cycles of the machine's
// reference clock. Time 0 is the instant the first CPU begins booting.
type Time int64

// Duration is a span of simulated time in cycles.
type Duration = Time

// Forever is a sentinel time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// MulDiv returns a*b/c computed with a 128-bit intermediate so that
// cycle<->nanosecond conversions never overflow or lose integer precision.
// It panics if c == 0 or the quotient overflows int64. Negative values are
// handled by sign-folding.
func MulDiv(a, b, c int64) int64 {
	if c == 0 {
		panic("sim: MulDiv by zero")
	}
	neg := false
	ua, ub, uc := uint64(a), uint64(b), uint64(c)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	if c < 0 {
		uc = uint64(-c)
		neg = !neg
	}
	hi, lo := bits.Mul64(ua, ub)
	if hi >= uc {
		panic("sim: MulDiv overflow")
	}
	q, _ := bits.Div64(hi, lo, uc)
	if neg {
		if q > 1<<63 {
			panic("sim: MulDiv overflow")
		}
		return -int64(q)
	}
	if q > 1<<63-1 {
		panic("sim: MulDiv overflow")
	}
	return int64(q)
}

// CyclesToNanos converts a cycle count at the given clock frequency (Hz)
// into nanoseconds, rounding toward zero.
func CyclesToNanos(cycles Time, hz int64) int64 {
	return MulDiv(int64(cycles), 1e9, hz)
}

// NanosToCycles converts nanoseconds into cycles at the given clock
// frequency (Hz), rounding toward zero.
func NanosToCycles(ns int64, hz int64) Time {
	return Time(MulDiv(ns, hz, 1e9))
}

// NanosToCyclesCeil converts nanoseconds into cycles, rounding up. The
// scheduler uses this when programming timers so that resolution mismatch
// results in earlier invocation, never later (Section 3.3).
func NanosToCyclesCeil(ns int64, hz int64) Time {
	c := MulDiv(ns, hz, 1e9)
	if MulDiv(c, 1e9, hz) < ns {
		c++
	}
	return Time(c)
}
