package sim

import "testing"

// Gated acceptance bars for the PR-4 engine rewrite, in the style of
// TestIncrementalSpeedupAtLeast10x at the repository root: the rewritten
// engine is measured against the preserved legacy engine (legacy.go) with
// testing.Benchmark, and the test fails if the structural win regresses
// below the bar. Both run the identical workload, so the ratio is robust
// to machine speed.

// TestFreezeStormSpeedupAtLeast5x is the tentpole's headline number: an
// SMI storm over 10k pending soft events. The legacy engine rescans every
// soft event and re-heapifies the queue per freeze; the rewrite updates
// two counters. The bar is a deliberately conservative 5x — the measured
// gap is orders of magnitude.
func TestFreezeStormSpeedupAtLeast5x(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison, skipped in -short")
	}
	rewritten := testing.Benchmark(BenchmarkEngineFreezeStorm)
	legacy := testing.Benchmark(BenchmarkLegacyFreezeStorm)
	if rewritten.N == 0 || rewritten.NsPerOp() == 0 {
		t.Fatalf("freeze-storm benchmark did not run: %+v", rewritten)
	}
	ratio := float64(legacy.NsPerOp()) / float64(rewritten.NsPerOp())
	t.Logf("legacy %v ns/op, rewritten %v ns/op over %d pending: %.1fx",
		legacy.NsPerOp(), rewritten.NsPerOp(), freezeStormPending, ratio)
	if ratio < 5 {
		t.Fatalf("freeze speedup %.1fx < 5x (legacy %dns/op, rewritten %dns/op)",
			ratio, legacy.NsPerOp(), rewritten.NsPerOp())
	}
}

// TestRearmChurnZeroAllocsPerOp gates the other half of the tentpole: the
// steady-state timer re-arm (Cancel + Reschedule of a persistent event)
// and the pooled schedule/fire cycle must not allocate.
func TestRearmChurnZeroAllocsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison, skipped in -short")
	}
	rearm := testing.Benchmark(BenchmarkEngineRearm)
	if rearm.N == 0 {
		t.Fatalf("re-arm benchmark did not run: %+v", rearm)
	}
	if a := rearm.AllocsPerOp(); a != 0 {
		t.Fatalf("timer re-arm allocates %d/op, want 0", a)
	}
	fire := testing.Benchmark(BenchmarkEngineThroughput)
	if fire.N == 0 {
		t.Fatalf("throughput benchmark did not run: %+v", fire)
	}
	if a := fire.AllocsPerOp(); a != 0 {
		t.Fatalf("pooled schedule/fire cycle allocates %d/op, want 0", a)
	}
}
