package sim

// eventHeap is a monomorphic intrusive 4-ary min-heap of *Event ordered by
// (key, seq). It replaces container/heap for the engine's hot path: no
// interface boxing, no Swap-callback indirection, and a 4-ary layout that
// roughly halves tree depth for the queue sizes the simulations run at
// (hundreds to tens of thousands of pending events), trading slightly more
// comparisons per level for better cache behaviour on the way down.
//
// Events carry their own heap index so the engine can fix an entry in
// place after Reschedule without a search. Removal is not supported — the
// engine cancels lazily (tombstone + compaction) instead.
type eventHeap struct {
	a []*Event
}

func eventLess(x, y *Event) bool {
	if x.key != y.key {
		return x.key < y.key
	}
	return x.seq < y.seq
}

func (h *eventHeap) len() int { return len(h.a) }

// head returns the minimum event without removing it, or nil when empty.
func (h *eventHeap) head() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

func (h *eventHeap) push(ev *Event) {
	h.a = append(h.a, ev)
	h.siftUp(len(h.a) - 1, ev)
}

// popMin removes and returns the minimum event. It must not be called on
// an empty heap.
func (h *eventHeap) popMin() *Event {
	min := h.a[0]
	n := len(h.a) - 1
	last := h.a[n]
	h.a[n] = nil
	h.a = h.a[:n]
	if n > 0 {
		h.siftDown(0, last)
	}
	min.index = -1
	return min
}

// fix restores the heap invariant after the event at position i changed
// its key or seq.
func (h *eventHeap) fix(i int) {
	ev := h.a[i]
	if i > 0 && eventLess(ev, h.a[(i-1)/4]) {
		h.siftUp(i, ev)
		return
	}
	h.siftDown(i, ev)
}

// siftUp places ev, currently conceptually at position i, by walking the
// parent chain. It writes each displaced parent once instead of swapping.
func (h *eventHeap) siftUp(i int, ev *Event) {
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(ev, h.a[p]) {
			break
		}
		h.a[i] = h.a[p]
		h.a[i].index = int32(i)
		i = p
	}
	h.a[i] = ev
	ev.index = int32(i)
}

// siftDown places ev, currently conceptually at position i, by walking
// toward the leaves through the smallest child at each level.
func (h *eventHeap) siftDown(i int, ev *Event) {
	n := len(h.a)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if eventLess(h.a[j], h.a[m]) {
				m = j
			}
		}
		if !eventLess(h.a[m], ev) {
			break
		}
		h.a[i] = h.a[m]
		h.a[i].index = int32(i)
		i = m
	}
	h.a[i] = ev
	ev.index = int32(i)
}

// compact drops every tombstoned (cancelled) event, handing pooled ones
// back to the engine, and re-heapifies the survivors in place. Ordering of
// the survivors is unaffected: the comparator is a total order (seq is
// unique), so any valid heap arrangement pops in the same sequence.
func (h *eventHeap) compact(e *Engine) {
	kept := h.a[:0]
	for _, ev := range h.a {
		if ev.cancelled {
			ev.index = -1
			e.release(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(h.a); i++ {
		h.a[i] = nil
	}
	h.a = kept
	n := len(h.a)
	for i := range h.a {
		h.a[i].index = int32(i)
	}
	if n < 2 {
		return
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		h.siftDown(i, h.a[i])
	}
}
