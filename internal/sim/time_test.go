package sim

import (
	"testing"
	"testing/quick"
)

func TestMulDivExact(t *testing.T) {
	cases := []struct{ a, b, c, want int64 }{
		{10, 1e9, 1_300_000_000, 7},
		{1_300_000_000, 1e9, 1e9, 1_300_000_000},
		{0, 5, 7, 0},
		{-10, 3, 2, -15},
		{10, -3, 2, -15},
		{10, 3, -2, -15},
		{-10, -3, 2, 15},
		{1 << 40, 1 << 20, 1 << 30, 1 << 30},
	}
	for _, c := range cases {
		if got := MulDiv(c.a, c.b, c.c); got != c.want {
			t.Fatalf("MulDiv(%d,%d,%d) = %d, want %d", c.a, c.b, c.c, got, c.want)
		}
	}
}

func TestMulDivLargeNoOverflow(t *testing.T) {
	// cycles near 2^52 at 1.3 GHz: a*1e9 would overflow int64 badly.
	cycles := int64(1) << 52
	ns := MulDiv(cycles, 1e9, 1_300_000_000)
	back := MulDiv(ns, 1_300_000_000, 1e9)
	if diff := cycles - back; diff < 0 || diff > 2 {
		t.Fatalf("roundtrip drifted by %d cycles", diff)
	}
}

func TestMulDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on divide by zero")
		}
	}()
	MulDiv(1, 1, 0)
}

func TestMulDivOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on quotient overflow")
		}
	}()
	MulDiv(1<<62, 1<<62, 1)
}

func TestNanosToCyclesCeilNeverEarly(t *testing.T) {
	// The ceil conversion must never produce a cycle count whose ns value
	// is below the requested ns (timers fire early, never late... the
	// countdown in cycles must cover the full ns request).
	f := func(nsRaw uint32, hzSel uint8) bool {
		ns := int64(nsRaw)
		hz := []int64{1_300_000_000, 2_200_000_000, 1_000_000_000, 3_500_000_000}[hzSel%4]
		c := NanosToCyclesCeil(ns, hz)
		return CyclesToNanos(c, hz) >= ns && CyclesToNanos(c-1, hz) < ns || c == 0 && ns == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: cycles -> ns -> cycles truncation loses at most one ns worth of
// cycles, and conversions are monotone.
func TestPropertyConversionRoundtrip(t *testing.T) {
	f := func(cyclesRaw uint32, hzSel uint8) bool {
		cycles := Time(cyclesRaw)
		hz := []int64{1_300_000_000, 2_200_000_000, 999_999_937}[hzSel%3]
		ns := CyclesToNanos(cycles, hz)
		back := NanosToCycles(ns, hz)
		if back > cycles {
			return false
		}
		// Lost at most ~one ns of cycles.
		return int64(cycles-back) <= hz/1_000_000_000+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestConversionMonotone(t *testing.T) {
	hz := int64(1_300_000_000)
	prev := int64(-1)
	for ns := int64(0); ns < 2000; ns += 7 {
		c := int64(NanosToCycles(ns, hz))
		if c < prev {
			t.Fatalf("NanosToCycles not monotone at %d", ns)
		}
		prev = c
	}
}
