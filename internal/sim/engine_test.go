package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunInOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, Hard, func(now Time) { got = append(got, now) })
	}
	e.RunAll(100)
	want := []Time{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, Soft, func(Time) { got = append(got, i) })
	}
	e.RunAll(100)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, Hard, func(Time) { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Fatalf("not marked cancelled")
	}
	ev.Cancel() // idempotent
	e.RunAll(10)
	if fired {
		t.Fatalf("cancelled event fired")
	}
}

func TestCancelFromHandler(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.Schedule(5, Hard, func(Time) { victim.Cancel() })
	victim = e.Schedule(10, Hard, func(Time) { fired = true })
	e.RunAll(10)
	if fired {
		t.Fatalf("event cancelled at t=5 still fired")
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		e.Schedule(at, Hard, func(now Time) { fired = append(fired, now) })
	}
	e.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	e.Run(100)
	if len(fired) != 3 {
		t.Fatalf("remaining event lost")
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, Hard, func(Time) {})
	e.RunAll(10)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic scheduling in the past")
		}
	}()
	e.Schedule(5, Hard, func(Time) {})
}

func TestFreezeShiftsSoftNotHard(t *testing.T) {
	e := NewEngine()
	var softAt, hardAt Time
	e.Schedule(10, Hard, func(Time) { e.Freeze(100) })
	e.Schedule(50, Soft, func(now Time) { softAt = now })
	e.Schedule(200, Hard, func(now Time) { hardAt = now })
	e.RunAll(100)
	if softAt != 150 {
		t.Fatalf("soft event at %d, want 150 (shifted by freeze)", softAt)
	}
	if hardAt != 200 {
		t.Fatalf("hard event at %d, want 200 (unshifted)", hardAt)
	}
	if e.MissingTime() != 100 {
		t.Fatalf("missing time = %d, want 100", e.MissingTime())
	}
}

func TestFreezeDefersHardHandling(t *testing.T) {
	e := NewEngine()
	var hardAt Time
	e.Schedule(10, Hard, func(Time) { e.Freeze(100) })
	// This hardware event fires at 50, inside the freeze [10,110); its
	// handler must run at 110.
	e.Schedule(50, Hard, func(now Time) { hardAt = now })
	e.RunAll(100)
	if hardAt != 110 {
		t.Fatalf("frozen hard event handled at %d, want 110", hardAt)
	}
}

func TestOverlappingFreezesExtend(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, Hard, func(Time) { e.Freeze(100) }) // until 110
	e.Schedule(20, Hard, func(Time) {})                // deferred to 110
	var softAt Time
	e.Schedule(30, Soft, func(now Time) { softAt = now })
	e.RunAll(100)
	// Soft event at 30 shifted by 100 => 130.
	if softAt != 130 {
		t.Fatalf("soft at %d, want 130", softAt)
	}
}

func TestNestedFreezeOnlyAddsExtension(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, Hard, func(Time) {
		e.Freeze(100) // until 110
		e.Freeze(50)  // already frozen past 60: no change
	})
	e.RunAll(10)
	if e.MissingTime() != 100 {
		t.Fatalf("missing = %d, want 100", e.MissingTime())
	}
	if e.FrozenUntil() != 110 {
		t.Fatalf("frozenUntil = %d, want 110", e.FrozenUntil())
	}
}

func TestRunAllBound(t *testing.T) {
	e := NewEngine()
	var reschedule func(Time)
	reschedule = func(Time) { e.After(1, Hard, reschedule) }
	e.After(1, Hard, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatalf("runaway simulation not caught")
		}
	}()
	e.RunAll(1000)
}

// Property: for any batch of events, handling order equals sorted order by
// (time, insertion), and the clock never goes backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, raw := range times {
			at := Time(raw)
			i := i
			e.Schedule(at, Soft, func(now Time) {
				fired = append(fired, rec{now, i})
			})
		}
		e.RunAll(uint64(len(times)) + 1)
		if len(fired) != len(times) {
			return false
		}
		want := make([]rec, len(times))
		for i, raw := range times {
			want[i] = rec{Time(raw), i}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		// Clock is monotone.
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total missing time equals the sum of effective freeze
// durations, and every soft event slips by exactly the missing time that
// accumulated before it ran.
func TestPropertyFreezeAccounting(t *testing.T) {
	f := func(freezes []uint8) bool {
		e := NewEngine()
		at := Time(10)
		var want Duration
		for _, d := range freezes {
			d := Duration(d%50) + 1
			want += d
			dd := d
			e.Schedule(at, Hard, func(Time) { e.Freeze(dd) })
			at += 200 // freezes never overlap
		}
		var softAt Time
		softOrig := at + 100
		e.Schedule(softOrig, Soft, func(now Time) { softAt = now })
		e.RunAll(1 << 20)
		return e.MissingTime() == want && softAt == softOrig+want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
