package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	root := NewRand(7)
	s1 := root.Split()
	s2 := root.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d times", same)
	}
}

func TestSplitOrderInsensitive(t *testing.T) {
	// The i-th split stream's output depends only on the root seed and i,
	// not on when the other streams are consumed.
	r1 := NewRand(99)
	a1 := r1.Split()
	b1 := r1.Split()
	av1, bv1 := a1.Uint64(), b1.Uint64()

	r2 := NewRand(99)
	a2 := r2.Split()
	b2 := r2.Split()
	bv2, av2 := b2.Uint64(), a2.Uint64() // consumed in opposite order
	if av1 != av2 || bv1 != bv2 {
		t.Fatalf("split streams depend on consumption order")
	}
}

func TestInt63nBounds(t *testing.T) {
	r := NewRand(3)
	for _, n := range []int64{1, 2, 3, 7, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for n=0")
		}
	}()
	NewRand(1).Int63n(0)
}

func TestRangeInclusive(t *testing.T) {
	r := NewRand(5)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		if v == -3 {
			seenLo = true
		}
		if v == 3 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatalf("Range endpoints never hit (lo=%v hi=%v)", seenLo, seenHi)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.02 || math.Abs(std-1) > 0.02 {
		t.Fatalf("NormFloat64 moments off: mean=%.4f std=%.4f", mean, std)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(17)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential deviate")
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %.4f far from 1", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Int63n is not visibly biased across small moduli.
func TestInt63nUniformity(t *testing.T) {
	r := NewRand(23)
	const n, buckets = 90000, 9
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Int63n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 4*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", b, c, want)
		}
	}
}
