package sim

import (
	"fmt"
	"testing"
)

// This file covers the interactions introduced by the PR-4 engine rewrite:
// Freeze crossed with Cancel, Reschedule, nested freezes and hard-event
// deferral, the pool ownership contract, and the zero-allocation guarantees
// of the persistent-event re-arm path. A randomized differential test at
// the end drives the rewritten engine and the preserved legacy engine with
// identical workloads and asserts identical firing sequences.

// TestRescheduleMovesEvent verifies an armed event moved with Reschedule
// fires exactly once, at the new time, in fresh-seq order.
func TestRescheduleMovesEvent(t *testing.T) {
	e := NewEngine()
	var got []string
	ev := e.NewEvent(Soft, func(now Time) {
		got = append(got, fmt.Sprintf("moved@%d", now))
	})
	ev.Reschedule(100)
	e.Schedule(200, Soft, func(now Time) {
		got = append(got, fmt.Sprintf("fixed@%d", now))
	})
	// Move past the fixed event: Reschedule takes a fresh seq, so at an
	// equal time the moved event fires after one scheduled earlier.
	ev.Reschedule(200)
	e.RunAll(10)
	want := "[fixed@200 moved@200]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestRescheduleEarlierWhileQueued moves an armed event backwards in time.
func TestRescheduleEarlierWhileQueued(t *testing.T) {
	e := NewEngine()
	var got []Time
	ev := e.NewEvent(Hard, func(now Time) { got = append(got, now) })
	ev.Reschedule(500)
	e.Schedule(300, Hard, func(Time) {})
	ev.Reschedule(100)
	e.RunAll(10)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("got fires %v, want [100]", got)
	}
}

// TestRescheduleRevivesCancelled checks Cancel followed by Reschedule on a
// still-queued event revives it in place.
func TestRescheduleRevivesCancelled(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.NewEvent(Soft, func(Time) { fired++ })
	ev.Reschedule(100)
	ev.Cancel()
	if ev.Armed() {
		t.Fatal("cancelled event reports Armed")
	}
	ev.Reschedule(150)
	if !ev.Armed() {
		t.Fatal("revived event does not report Armed")
	}
	e.RunAll(10)
	if fired != 1 || e.Now() != 150 {
		t.Fatalf("fired=%d now=%d, want 1 fire at 150", fired, e.Now())
	}
}

// TestRescheduleFromOwnHandler re-arms a persistent event from inside its
// own handler — the steady-state pattern of the CPU one-shot timer and the
// device interrupt sources.
func TestRescheduleFromOwnHandler(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var ev *Event
	ev = e.NewEvent(Hard, func(now Time) {
		fires = append(fires, now)
		if len(fires) < 3 {
			ev.RescheduleAfter(10)
		}
	})
	ev.RescheduleAfter(10)
	e.RunAll(10)
	if fmt.Sprint(fires) != "[10 20 30]" {
		t.Fatalf("got fires %v, want [10 20 30]", fires)
	}
	if ev.Armed() {
		t.Fatal("event still armed after chain ended")
	}
}

// TestRescheduleSoftAcrossFreeze verifies that a soft event rescheduled
// while frozen is keyed against the updated missing time: it still fires at
// schedule-time + slip accumulated after the (re)schedule, not before.
func TestRescheduleSoftAcrossFreeze(t *testing.T) {
	e := NewEngine()
	var fires []Time
	ev := e.NewEvent(Soft, func(now Time) { fires = append(fires, now) })
	ev.Reschedule(100)
	e.Schedule(50, Hard, func(Time) {
		e.Freeze(1000)
		// Re-target during the freeze: the new time is absolute, so no
		// further slip from the already-counted freeze may apply.
		ev.Reschedule(2000)
	})
	e.RunAll(10)
	if fmt.Sprint(fires) != "[2000]" {
		t.Fatalf("got fires %v, want [2000]", fires)
	}
}

// TestFreezeCancelInteraction cancels some slipping events mid-freeze and
// checks survivors slip while cancelled ones stay dead.
func TestFreezeCancelInteraction(t *testing.T) {
	e := NewEngine()
	var fires []Time
	evs := make([]*Event, 8)
	for i := range evs {
		evs[i] = e.Schedule(Time(100+i), Soft, func(now Time) {
			fires = append(fires, now)
		})
	}
	e.Schedule(10, Hard, func(Time) {
		e.Freeze(50)
		for i, ev := range evs {
			if i%2 == 0 {
				ev.Cancel()
			}
		}
	})
	e.RunAll(100)
	if fmt.Sprint(fires) != "[151 153 155 157]" {
		t.Fatalf("got fires %v, want odd-index events slipped by 50", fires)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d after drain", e.Pending())
	}
}

// TestNestedFreezeHardDeferral stacks a freeze extension issued from a
// deferred hard handler and checks both hard deferral times and soft slip.
func TestNestedFreezeHardDeferral(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(100, Soft, func(now Time) { got = append(got, fmt.Sprintf("soft@%d", now)) })
	e.Schedule(20, Hard, func(now Time) {
		got = append(got, fmt.Sprintf("smi@%d", now))
		e.Freeze(40) // frozen until 60
	})
	// Fires (hardware) at 50, inside the freeze; handled at the freeze end,
	// where it extends the freeze again.
	e.Schedule(50, Hard, func(now Time) {
		got = append(got, fmt.Sprintf("irq@%d", now))
		e.Freeze(30) // frozen until 90
	})
	e.RunAll(10)
	// The soft event overlaps both freeze windows: slip 40 + 30 = 70.
	want := "[smi@20 irq@60 soft@170]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %v", got, want)
	}
	if e.MissingTime() != 70 {
		t.Fatalf("missing time %d, want 70", e.MissingTime())
	}
}

// TestDeferredHardOrderIsRequeueOrder checks that several hard events
// deferred by the same freeze are handled in original firing order (they
// are re-sequenced one at a time as they surface).
func TestDeferredHardOrderIsRequeueOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(10, Hard, func(Time) { e.Freeze(100) })
	for i := 0; i < 4; i++ {
		id := i
		e.Schedule(Time(20+10*i), Hard, func(now Time) {
			if now != 110 {
				t.Errorf("event %d handled at %d, want freeze end 110", id, now)
			}
			got = append(got, id)
		})
	}
	e.RunAll(10)
	if fmt.Sprint(got) != "[0 1 2 3]" {
		t.Fatalf("deferred order %v, want [0 1 2 3]", got)
	}
}

// TestCancelDeferredHard cancels a hard event while it is frozen-deferred.
func TestCancelDeferredHard(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(50, Hard, func(Time) { fired = true })
	e.Schedule(10, Hard, func(Time) {
		e.Freeze(100)
		ev.Cancel()
	})
	e.RunAll(10)
	if fired {
		t.Fatal("cancelled deferred hard event fired")
	}
}

// TestPoolReuseAfterFire checks pooled events actually recycle: the same
// object comes back from the free list once its firing completes.
func TestPoolReuseAfterFire(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(10, Soft, func(Time) {})
	e.RunAll(1)
	second := e.Schedule(20, Soft, func(Time) {})
	if first != second {
		t.Fatal("fired pooled event was not recycled")
	}
	e.RunAll(1)
}

// TestPoolReuseAfterCancelCollection checks a cancelled pooled event is
// recycled once its tombstone is collected at the heap head.
func TestPoolReuseAfterCancelCollection(t *testing.T) {
	e := NewEngine()
	victim := e.Schedule(10, Soft, func(Time) {})
	keeper := e.Schedule(20, Soft, func(Time) {})
	victim.Cancel()
	// Collection happens when the tombstone surfaces during Step.
	e.RunAll(1)
	again := e.Schedule(30, Soft, func(Time) {})
	if again != victim && again != keeper {
		t.Fatal("neither collected tombstone nor fired event was recycled")
	}
	e.RunAll(1)
}

// TestReschedulePooledAfterFirePanics enforces the ownership contract: a
// pooled event must not be re-armed after its handler has run.
func TestReschedulePooledAfterFirePanics(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(10, Soft, func(Time) {})
	e.RunAll(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rescheduling a fired pooled event")
		}
	}()
	ev.Reschedule(100)
}

// TestCancelHeavyCompaction floods the queue with cancellations to drive
// the compaction path and checks the survivors still fire in order.
func TestCancelHeavyCompaction(t *testing.T) {
	e := NewEngine()
	var fires []Time
	var keep []*Event
	for i := 0; i < 2048; i++ {
		at := Time(1000 + i)
		ev := e.Schedule(at, Soft, func(now Time) { fires = append(fires, now) })
		if i%64 == 0 {
			keep = append(keep, ev)
		} else {
			ev.Cancel()
		}
	}
	if e.Pending() != len(keep) {
		t.Fatalf("pending=%d, want %d", e.Pending(), len(keep))
	}
	e.RunAll(uint64(len(keep)) + 1)
	if len(fires) != len(keep) {
		t.Fatalf("fired %d, want %d", len(fires), len(keep))
	}
	for i := 1; i < len(fires); i++ {
		if fires[i] <= fires[i-1] {
			t.Fatalf("out of order at %d: %v", i, fires[i-1:i+1])
		}
	}
}

// TestRearmZeroAllocs asserts the steady-state timer re-arm — cancel a
// pending persistent event and reschedule it — allocates nothing.
func TestRearmZeroAllocs(t *testing.T) {
	e := NewEngine()
	ev := e.NewEvent(Hard, func(Time) {})
	ev.Reschedule(1 << 40)
	// Background load so the heap fix is not trivially empty.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(1<<41+i), Hard, func(Time) {})
	}
	at := Time(1 << 40)
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Cancel()
		at++
		ev.Reschedule(at)
	})
	if allocs != 0 {
		t.Fatalf("re-arm allocates %v per op, want 0", allocs)
	}
}

// TestFireAndRearmZeroAllocs asserts the full steady-state cycle — a
// persistent event firing and re-arming itself from its handler, then the
// engine stepping it — allocates nothing.
func TestFireAndRearmZeroAllocs(t *testing.T) {
	e := NewEngine()
	var ev *Event
	ev = e.NewEvent(Hard, func(Time) { ev.RescheduleAfter(10) })
	ev.RescheduleAfter(10)
	allocs := testing.AllocsPerRun(1000, func() {
		if !e.Step() {
			t.Fatal("queue unexpectedly empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("fire+re-arm allocates %v per op, want 0", allocs)
	}
}

// TestPooledChurnZeroAllocs asserts that once the free list is primed, the
// After-fire-recycle cycle of pooled events also allocates nothing beyond
// the handler closure itself (the closure here is static, so zero).
func TestPooledChurnZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func(Time) {}
	// Prime the pool.
	e.After(1, Soft, fn)
	e.RunAll(1)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, Soft, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("pooled churn allocates %v per op, want 0", allocs)
	}
}

// TestFreezeZeroAllocs asserts Freeze allocates nothing regardless of the
// number of pending soft events (it is two counter updates).
func TestFreezeZeroAllocs(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4096; i++ {
		e.Schedule(Time(1<<40+i), Soft, func(Time) {})
	}
	allocs := testing.AllocsPerRun(1000, func() { e.Freeze(1) })
	if allocs != 0 {
		t.Fatalf("Freeze allocates %v per op, want 0", allocs)
	}
}

// engineOp is one scripted operation for the differential test.
type engineOp int

const (
	opSchedule engineOp = iota
	opCancel
	opReschedule
	opFreeze
	opStep
	opRun
)

// TestRandomizedEquivalenceWithLegacy drives the rewritten engine and the
// preserved legacy engine with an identical randomized mix of schedules,
// cancels, reschedules (cancel+schedule on the legacy side, which consumes
// the same sequence numbers), freezes and steps, and asserts the firing
// sequences (id, time) and final clocks are identical.
func TestRandomizedEquivalenceWithLegacy(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceTrial(t, seed)
		})
	}
}

func runEquivalenceTrial(t *testing.T, seed int64) {
	type fire struct {
		id int
		at Time
	}
	var gotNew, gotOld []fire

	eNew := NewEngine()
	eOld := newLegacyEngine()
	rng := NewRand(uint64(seed))

	// Each scheduled logical event is tracked in a record so the test
	// honours the pool ownership contract on the new engine: a pooled
	// event's pointer is dead once it fires or is cancelled (the object may
	// be recycled for an unrelated Schedule), so ops on such records are
	// skipped. Persistent events carry no such restriction and are the ones
	// exercised by Cancel-after-fire, Reschedule and revive-after-Cancel.
	type rec struct {
		id         int
		class      EventClass
		persistent bool
		fired      bool
		cancelled  bool
		nv         *Event
		ov         *legacyEvent
	}
	var recs []*rec

	schedule := func(d Duration, class EventClass, persistent bool) {
		r := &rec{id: len(recs), class: class, persistent: persistent}
		at := eNew.now + Time(d)
		onNew := func(now Time) {
			r.fired = true
			gotNew = append(gotNew, fire{r.id, now})
		}
		if persistent {
			// NewEvent consumes no sequence number; the arming Reschedule
			// consumes one, exactly like the legacy Schedule below.
			r.nv = eNew.NewEvent(class, onNew)
			r.nv.Reschedule(at)
		} else {
			r.nv = eNew.Schedule(at, class, onNew)
		}
		r.ov = eOld.Schedule(at, class, func(now Time) {
			r.fired = true
			gotOld = append(gotOld, fire{r.id, now})
		})
		recs = append(recs, r)
	}

	for i := 0; i < 400; i++ {
		op := engineOp(rng.Intn(6))
		switch op {
		case opSchedule:
			class := EventClass(rng.Intn(2))
			schedule(Duration(rng.Range(1, 500)), class, rng.Intn(2) == 0)
		case opCancel:
			if len(recs) == 0 {
				continue
			}
			r := recs[rng.Intn(len(recs))]
			// Pooled pointers are dead after fire or cancel; persistent
			// Cancel is safe in any state (a no-op when idle).
			if !r.persistent && (r.fired || r.cancelled) {
				continue
			}
			r.cancelled = true
			r.nv.Cancel()
			r.ov.Cancel()
		case opReschedule:
			if len(recs) == 0 {
				continue
			}
			r := recs[rng.Intn(len(recs))]
			if !r.persistent {
				continue
			}
			// Persistent Reschedule covers every state: armed (move in
			// place), cancelled-but-queued (revive), fired/idle (re-push).
			// It consumes one seq; the legacy mirror is an eager Cancel
			// (no seq, no-op when already gone) plus a fresh Schedule (one
			// seq) reporting the same id.
			at := eNew.now + Time(rng.Range(1, 500))
			r.fired = false
			r.cancelled = false
			r.nv.Reschedule(at)
			r.ov.Cancel()
			r.ov = eOld.Schedule(at, r.class, func(now Time) {
				r.fired = true
				gotOld = append(gotOld, fire{r.id, now})
			})
		case opFreeze:
			d := Duration(rng.Range(1, 200))
			eNew.Freeze(d)
			eOld.Freeze(d)
		case opStep:
			sn := eNew.Step()
			so := eOld.Step()
			if sn != so {
				t.Fatalf("op %d: Step returned %v (new) vs %v (legacy)", i, sn, so)
			}
		case opRun:
			until := eNew.Now() + Time(rng.Range(1, 1000))
			// Stopping a Run inside a freeze window can strand a soft
			// event behind a deferred hard head with the clock already
			// advanced past its effective time — a latent corner both
			// implementations share (and panic on identically), never hit
			// by real workloads. Run at least to the freeze end.
			if fu := eNew.FrozenUntil(); until < fu {
				until = fu
			}
			nn := eNew.Run(until)
			no := eOld.Run(until)
			if nn != no {
				t.Fatalf("op %d: Run(%d) handled %d (new) vs %d (legacy)", i, until, nn, no)
			}
		}
		if eNew.Now() != eOld.Now() {
			t.Fatalf("op %d: clocks diverged: %d (new) vs %d (legacy)", i, eNew.Now(), eOld.Now())
		}
		if eNew.MissingTime() != eOld.MissingTime() {
			t.Fatalf("op %d: missing time diverged: %d vs %d", i, eNew.MissingTime(), eOld.MissingTime())
		}
	}
	eNew.RunAll(1 << 20)
	eOld.RunAll(1 << 20)

	if len(gotNew) != len(gotOld) {
		t.Fatalf("fired %d events (new) vs %d (legacy)", len(gotNew), len(gotOld))
	}
	for i := range gotNew {
		if gotNew[i] != gotOld[i] {
			t.Fatalf("fire %d: %+v (new) vs %+v (legacy)", i, gotNew[i], gotOld[i])
		}
	}
	if eNew.Now() != eOld.Now() {
		t.Fatalf("final clocks: %d (new) vs %d (legacy)", eNew.Now(), eOld.Now())
	}
}
