package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-handling rate — the floor
// under every simulation in this repository.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	var next func(Time)
	next = func(Time) { e.After(10, Soft, next) }
	e.After(10, Soft, next)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineMixedQueue measures handling with a populated queue (heap
// operations dominate).
func BenchmarkEngineMixedQueue(b *testing.B) {
	e := NewEngine()
	rng := NewRand(1)
	for i := 0; i < 1024; i++ {
		d := Duration(rng.Range(1, 1_000_000))
		var reschedule func(Time)
		reschedule = func(Time) { e.After(d, Hard, reschedule) }
		e.After(d, Hard, reschedule)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkFreeze measures the cost of SMI freeze propagation over a
// loaded queue.
func BenchmarkFreeze(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 4096; i++ {
		e.Schedule(Time(1_000_000+i), Soft, func(Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Freeze(1)
	}
}

// freezeStormPending is the queue depth for the SMI-storm benchmarks: the
// gated speedup test (speedup_test.go) measures Freeze over this many
// pending soft events, rewrite vs legacy engine.
const freezeStormPending = 10_000

// BenchmarkEngineFreezeStorm measures one SMI freeze extension over a deep
// soft queue on the rewritten engine, where it is two counter updates.
// Each iteration extends the window by one cycle so the slow path (the
// legacy counterpart's full rescan) cannot short-circuit on overlap.
func BenchmarkEngineFreezeStorm(b *testing.B) {
	e := NewEngine()
	for i := 0; i < freezeStormPending; i++ {
		e.Schedule(Time(1<<40+i), Soft, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Freeze(Duration(i + 1))
	}
}

// BenchmarkLegacyFreezeStorm is the same storm against the preserved
// pre-rewrite engine: every freeze rescans all pending soft events and
// re-heapifies the whole queue.
func BenchmarkLegacyFreezeStorm(b *testing.B) {
	e := newLegacyEngine()
	for i := 0; i < freezeStormPending; i++ {
		e.Schedule(Time(1<<40+i), Soft, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Freeze(Duration(i + 1))
	}
}

// BenchmarkEngineRearm measures the one-shot-timer churn pattern on the
// rewritten engine: cancel a pending persistent event and re-arm it in
// place. This is the path behind machine.CPU.SetOneShot* and must stay at
// zero allocations per op (asserted by the gated test).
func BenchmarkEngineRearm(b *testing.B) {
	e := NewEngine()
	ev := e.NewEvent(Hard, func(Time) {})
	ev.Reschedule(1 << 39)
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(1<<40+i), Hard, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cancel()
		ev.Reschedule(Time(1<<39) + Time(i&1023))
	}
}

// BenchmarkLegacyRearm is the same churn the pre-rewrite way: an eager
// heap removal plus a freshly allocated event per re-arm.
func BenchmarkLegacyRearm(b *testing.B) {
	e := newLegacyEngine()
	ev := e.Schedule(1<<39, Hard, func(Time) {})
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(1<<40+i), Hard, func(Time) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Cancel()
		ev = e.Schedule(Time(1<<39)+Time(i&1023), Hard, func(Time) {})
	}
}

// BenchmarkEngineCancelHeavy measures schedule-then-cancel churn, the
// pattern of retired scheduler passes: lazy tombstoning plus periodic
// compaction on the rewritten engine.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(1<<40)+Time(i&4095), Soft, fn).Cancel()
	}
}

// BenchmarkLegacyCancelHeavy is the same churn with eager heap removal and
// per-schedule allocation.
func BenchmarkLegacyCancelHeavy(b *testing.B) {
	e := newLegacyEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(1<<40)+Time(i&4095), Soft, fn).Cancel()
	}
}

// BenchmarkLegacyThroughput is BenchmarkEngineThroughput against the
// preserved engine, for the pooled-allocation comparison in BENCH_PR4.
func BenchmarkLegacyThroughput(b *testing.B) {
	e := newLegacyEngine()
	var next func(Time)
	next = func(Time) { e.After(10, Soft, next) }
	e.After(10, Soft, next)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkRandUint64 measures the deterministic RNG.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(7)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// BenchmarkMulDiv measures the 128-bit time conversion primitive.
func BenchmarkMulDiv(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= MulDiv(int64(i)+1, 1e9, 1_300_000_000)
	}
	_ = sink
}
