package sim

import "testing"

// BenchmarkEngineThroughput measures raw event-handling rate — the floor
// under every simulation in this repository.
func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	var next func(Time)
	next = func(Time) { e.After(10, Soft, next) }
	e.After(10, Soft, next)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineMixedQueue measures handling with a populated queue (heap
// operations dominate).
func BenchmarkEngineMixedQueue(b *testing.B) {
	e := NewEngine()
	rng := NewRand(1)
	for i := 0; i < 1024; i++ {
		d := Duration(rng.Range(1, 1_000_000))
		var reschedule func(Time)
		reschedule = func(Time) { e.After(d, Hard, reschedule) }
		e.After(d, Hard, reschedule)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkFreeze measures the cost of SMI freeze propagation over a
// loaded queue.
func BenchmarkFreeze(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 4096; i++ {
		e.Schedule(Time(1_000_000+i), Soft, func(Time) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Freeze(1)
	}
}

// BenchmarkRandUint64 measures the deterministic RNG.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(7)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// BenchmarkMulDiv measures the 128-bit time conversion primitive.
func BenchmarkMulDiv(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		sink ^= MulDiv(int64(i)+1, 1e9, 1_300_000_000)
	}
	_ = sink
}
