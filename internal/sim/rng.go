package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is splittable: independent components of a simulation each
// take a Split() stream from a single root seed, so the whole run is
// reproducible bit-for-bit regardless of the order in which components
// consume randomness.
type Rand struct {
	state uint64
	spare float64
	has   bool
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent generator from this one, consuming one draw.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (-max) % max // = (2^64) mod n, computed in uint64 arithmetic
	for {
		v := r.Uint64()
		if v >= limit {
			return int64(v % max)
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Range returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *Rand) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	if r.has {
		r.has = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.has = true
	return mag * math.Cos(2*math.Pi*v)
}

// TruncNormFloat64 returns a normal deviate with the given mean and sigma,
// truncated to [lo, hi] by rejection sampling. After maxNormRejects
// rejections the draw is clamped instead, bounding the worst case while
// staying deterministic for a given stream. Panics if hi < lo.
func (r *Rand) TruncNormFloat64(mean, sigma, lo, hi float64) float64 {
	if hi < lo {
		panic("sim: TruncNormFloat64 with hi < lo")
	}
	if sigma <= 0 || lo == hi {
		return math.Min(math.Max(mean, lo), hi)
	}
	const maxNormRejects = 64
	for i := 0; i < maxNormRejects; i++ {
		x := mean + sigma*r.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	return math.Min(math.Max(mean+sigma*r.NormFloat64(), lo), hi)
}

// ExpFloat64 returns an exponentially distributed deviate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
