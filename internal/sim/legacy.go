package sim

import "container/heap"

// This file preserves the pre-PR-4 container/heap engine as an internal
// reference implementation. It exists for two reasons: the gated A/B
// speedup tests in speedup_test.go measure the rewrite against it, and the
// randomized equivalence test in engine_matrix_test.go drives both engines
// with identical workloads and asserts identical firing sequences. It is
// deliberately not reachable from any non-test code and can be deleted
// once a few PRs of benchmark trajectory have accumulated.

// legacyEvent is the reference implementation's event: one `any`-boxed
// binary-heap node, eagerly removed on cancel.
type legacyEvent struct {
	at        Time
	seq       uint64
	class     EventClass
	fn        Handler
	index     int // heap index, -1 once popped or cancelled
	engine    *legacyEngine
	cancelled bool
}

func (e *legacyEvent) At() Time        { return e.at }
func (e *legacyEvent) Cancelled() bool { return e.cancelled }

func (e *legacyEvent) Cancel() {
	if e.cancelled || e.index < 0 {
		e.cancelled = true
		return
	}
	e.cancelled = true
	heap.Remove(&e.engine.queue, e.index)
	e.index = -1
}

type legacyQueue []*legacyEvent

func (q legacyQueue) Len() int { return len(q) }
func (q legacyQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q legacyQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *legacyQueue) Push(x any) {
	e := x.(*legacyEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *legacyQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// legacyEngine is the pre-PR-4 engine: a single container/heap queue,
// O(n + heap.Init) Freeze, per-Schedule allocation, eager cancellation.
type legacyEngine struct {
	queue       legacyQueue
	now         Time
	seq         uint64
	frozenUntil Time
	missingTime Duration
	steps       uint64
}

func newLegacyEngine() *legacyEngine { return &legacyEngine{} }

func (e *legacyEngine) Now() Time             { return e.now }
func (e *legacyEngine) Steps() uint64         { return e.steps }
func (e *legacyEngine) MissingTime() Duration { return e.missingTime }
func (e *legacyEngine) FrozenUntil() Time     { return e.frozenUntil }
func (e *legacyEngine) Pending() int          { return len(e.queue) }

func (e *legacyEngine) Schedule(at Time, class EventClass, fn Handler) *legacyEvent {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &legacyEvent{at: at, seq: e.seq, class: class, fn: fn, engine: e}
	heap.Push(&e.queue, ev)
	return ev
}

func (e *legacyEngine) After(d Duration, class EventClass, fn Handler) *legacyEvent {
	return e.Schedule(e.now+d, class, fn)
}

// Freeze is the O(n)-rescan-plus-heap.Init implementation the rewrite
// replaces: every pending soft event is touched and the whole queue
// re-heapified per SMI.
func (e *legacyEngine) Freeze(d Duration) {
	if d <= 0 {
		return
	}
	end := e.now + d
	if e.frozenUntil > e.now {
		d = end - e.frozenUntil
		if d <= 0 {
			return
		}
		end = e.frozenUntil + d
	}
	e.frozenUntil = end
	e.missingTime += d
	for _, ev := range e.queue {
		if ev.class == Soft {
			ev.at += d
		}
	}
	heap.Init(&e.queue)
}

func (e *legacyEngine) peek() *legacyEvent {
	for len(e.queue) > 0 && e.queue[0].cancelled {
		heap.Pop(&e.queue)
	}
	if len(e.queue) == 0 {
		return nil
	}
	return e.queue[0]
}

func (e *legacyEngine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*legacyEvent)
		if ev.cancelled {
			continue
		}
		at := ev.at
		if ev.class == Hard && at < e.frozenUntil {
			ev.at = e.frozenUntil
			e.seq++
			ev.seq = e.seq
			heap.Push(&e.queue, ev)
			continue
		}
		if at < e.now {
			panic("sim: time went backwards")
		}
		e.now = at
		e.steps++
		ev.fn(at)
		return true
	}
	return false
}

func (e *legacyEngine) Run(until Time) uint64 {
	var n uint64
	for {
		head := e.peek()
		if head == nil {
			break
		}
		next := head.at
		if head.class == Hard && next < e.frozenUntil {
			next = e.frozenUntil
		}
		if next > until {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

func (e *legacyEngine) RunAll(maxEvents uint64) uint64 {
	var n uint64
	for e.Step() {
		n++
		if n > maxEvents {
			panic("sim: event bound exceeded; simulation is not terminating")
		}
	}
	return n
}
