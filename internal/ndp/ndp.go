// Package ndp is a miniature NESL-like nested data-parallel run-time —
// the second run-time integration the paper names in Section 8. Nested
// (segmented) vectors are flattened so that parallelism is over elements,
// not segments: wildly irregular segment sizes cannot imbalance the team,
// which is the property that made NESL a natural HRT tenant.
//
// Operations compile to statically-scheduled parallel-for regions on an
// omp.Team, so they inherit whatever scheduling regime the team runs
// under: plain, gang-scheduled, or gang-scheduled with barriers removed.
package ndp

import (
	"fmt"

	"hrtsched/internal/omp"
)

// SegVector is a flattened nested vector: Data holds every element of
// every segment contiguously; Lens holds the segment lengths.
type SegVector struct {
	Data []float64
	Lens []int
}

// NewSegVector builds a segmented vector from nested slices.
func NewSegVector(segments [][]float64) *SegVector {
	v := &SegVector{}
	for _, s := range segments {
		v.Lens = append(v.Lens, len(s))
		v.Data = append(v.Data, s...)
	}
	return v
}

// Total returns the flattened element count.
func (v *SegVector) Total() int { return len(v.Data) }

// Segments returns the number of segments.
func (v *SegVector) Segments() int { return len(v.Lens) }

// segStarts returns the exclusive prefix sum of the segment lengths.
func (v *SegVector) segStarts() []int {
	starts := make([]int, len(v.Lens)+1)
	for i, l := range v.Lens {
		starts[i+1] = starts[i] + l
	}
	return starts
}

// Validate checks that the descriptor matches the data.
func (v *SegVector) Validate() error {
	n := 0
	for i, l := range v.Lens {
		if l < 0 {
			return fmt.Errorf("ndp: segment %d has negative length", i)
		}
		n += l
	}
	if n != len(v.Data) {
		return fmt.Errorf("ndp: descriptor covers %d of %d elements", n, len(v.Data))
	}
	return nil
}

// costPerElem is the modelled cycles per element for the element-wise
// kernels below.
const costPerElem = 12

// Map applies f to every element in parallel (flat, perfectly balanced).
func Map(team *omp.Team, v *SegVector, f func(x float64) float64, maxEvents uint64) error {
	target := team.Completed() + 1
	team.Submit(omp.Region{
		Name: "ndp-map", Iterations: v.Total(), CostPerIter: costPerElem,
		Body: func(i int) { v.Data[i] = f(v.Data[i]) },
	})
	if !team.Wait(target, maxEvents) {
		return fmt.Errorf("ndp: map stalled")
	}
	return nil
}

// Scan computes the in-place exclusive prefix sum of the flat data using
// the classic two-pass parallel algorithm: per-chunk partial sums, a small
// serial scan of the partials, then a per-chunk fix-up pass.
func Scan(team *omp.Team, v *SegVector, maxEvents uint64) error {
	n := v.Total()
	if n == 0 {
		return nil
	}
	workers := team.Workers()
	partial := make([]float64, workers)
	// Per-chunk state must align exactly with the team's static partition:
	// each worker executes its whole chunk atomically and in index order.
	chunkOf := func(i int) int { return team.ChunkOf(i, n) }
	// Pass 1: local sums.
	t1 := team.Completed() + 1
	team.Submit(omp.Region{
		Name: "ndp-scan-1", Iterations: n, CostPerIter: costPerElem,
		Body: func(i int) { partial[chunkOf(i)] += v.Data[i] },
	})
	if !team.Wait(t1, maxEvents) {
		return fmt.Errorf("ndp: scan pass 1 stalled")
	}
	// Serial exclusive scan of the (few) partials.
	acc := 0.0
	for c := range partial {
		partial[c], acc = acc, acc+partial[c]
	}
	// Pass 2: local exclusive prefix with chunk offset. Each chunk walks
	// its own elements in order; the region body is invoked in index order
	// within a chunk, so a running accumulator per chunk is sound.
	running := make([]float64, workers)
	copy(running, partial)
	t2 := team.Completed() + 1
	team.Submit(omp.Region{
		Name: "ndp-scan-2", Iterations: n, CostPerIter: costPerElem,
		Body: func(i int) {
			c := chunkOf(i)
			old := v.Data[i]
			v.Data[i] = running[c]
			running[c] += old
		},
	})
	if !team.Wait(t2, maxEvents) {
		return fmt.Errorf("ndp: scan pass 2 stalled")
	}
	return nil
}

// SegReduce sums each segment, returning one value per segment. The
// element-parallel pass accumulates into per-worker partial tables indexed
// by segment, then a small serial pass combines them — segment skew never
// imbalances the parallel pass.
func SegReduce(team *omp.Team, v *SegVector, maxEvents uint64) ([]float64, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	workers := team.Workers()
	n := v.Total()
	segs := v.Segments()
	out := make([]float64, segs)
	if n == 0 {
		return out, nil
	}
	starts := v.segStarts()
	// segOf[i] = owning segment, precomputed (what a real flattening
	// compiler carries as the segment-descriptor expansion).
	segOf := make([]int, n)
	s := 0
	for i := 0; i < n; i++ {
		for starts[s+1] <= i {
			s++
		}
		segOf[i] = s
	}
	chunkOf := func(i int) int { return team.ChunkOf(i, n) }
	partials := make([][]float64, workers)
	for w := range partials {
		partials[w] = make([]float64, segs)
	}
	target := team.Completed() + 1
	team.Submit(omp.Region{
		Name: "ndp-segreduce", Iterations: n, CostPerIter: costPerElem + 4,
		Body: func(i int) { partials[chunkOf(i)][segOf[i]] += v.Data[i] },
	})
	if !team.Wait(target, maxEvents) {
		return nil, fmt.Errorf("ndp: segreduce stalled")
	}
	for w := range partials {
		for sIdx, p := range partials[w] {
			out[sIdx] += p
		}
	}
	return out, nil
}
