package ndp

import (
	"math"
	"testing"
	"testing/quick"

	"hrtsched/internal/core"
	"hrtsched/internal/machine"
	"hrtsched/internal/omp"
	"hrtsched/internal/sim"
)

func team(t *testing.T, workers int, seed uint64, cons core.Constraints, sync omp.SyncMode) (*core.Kernel, *omp.Team) {
	t.Helper()
	spec := machine.PhiKNL().Scaled(workers + 1)
	m := machine.New(spec, seed)
	k := core.Boot(m, core.DefaultConfig(spec))
	tm := omp.MustNewTeam(k, omp.Config{Workers: workers, FirstCPU: 1, Constraints: cons, Sync: sync})
	return k, tm
}

func TestSegVectorConstruction(t *testing.T) {
	v := NewSegVector([][]float64{{1, 2}, {}, {3, 4, 5}})
	if v.Total() != 5 || v.Segments() != 3 {
		t.Fatalf("shape: %d elems, %d segs", v.Total(), v.Segments())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &SegVector{Data: []float64{1}, Lens: []int{2}}
	if bad.Validate() == nil {
		t.Fatalf("invalid descriptor accepted")
	}
	neg := &SegVector{Data: nil, Lens: []int{-1}}
	if neg.Validate() == nil {
		t.Fatalf("negative length accepted")
	}
}

func TestMap(t *testing.T) {
	_, tm := team(t, 4, 151, core.AperiodicConstraints(50), omp.SyncBarrier)
	v := NewSegVector([][]float64{{1, 2, 3}, {4, 5}})
	if err := Map(tm, v, func(x float64) float64 { return x * x }, 1<<24); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 4, 9, 16, 25}
	for i, x := range v.Data {
		if x != want[i] {
			t.Fatalf("data[%d] = %v", i, x)
		}
	}
}

func TestScanMatchesSequential(t *testing.T) {
	_, tm := team(t, 4, 152, core.AperiodicConstraints(50), omp.SyncBarrier)
	const n = 101
	nested := [][]float64{make([]float64, n)}
	for i := range nested[0] {
		nested[0][i] = float64(i%7) + 0.5
	}
	v := NewSegVector(nested)
	ref := make([]float64, n)
	acc := 0.0
	for i, x := range v.Data {
		ref[i] = acc
		acc += x
	}
	if err := Scan(tm, v, 1<<26); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(v.Data[i]-ref[i]) > 1e-9 {
			t.Fatalf("scan[%d] = %v, want %v", i, v.Data[i], ref[i])
		}
	}
}

func TestSegReduceSkewedSegments(t *testing.T) {
	// The flattening claim: one huge segment among tiny ones must not
	// imbalance the team — every worker still touches ~n/W elements.
	_, tm := team(t, 4, 153, core.AperiodicConstraints(50), omp.SyncBarrier)
	big := make([]float64, 1000)
	for i := range big {
		big[i] = 1
	}
	v := NewSegVector([][]float64{{2, 2}, big, {5}, {}})
	sums, err := SegReduce(tm, v, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 1000, 5, 0}
	for i := range want {
		if sums[i] != want[i] {
			t.Fatalf("segment %d sum = %v, want %v", i, sums[i], want[i])
		}
	}
	// Balance: 4 chunks of ~1003/4 each.
	if tm.ChunksRun != 4 {
		t.Fatalf("chunks = %d", tm.ChunksRun)
	}
}

func TestNDPOnGangScheduledTeam(t *testing.T) {
	// The whole point: the same NDP program runs under hard real-time gang
	// scheduling with barriers removed, with identical results.
	runSum := func(cons core.Constraints, sync omp.SyncMode, seed uint64) float64 {
		_, tm := team(t, 4, seed, cons, sync)
		v := NewSegVector([][]float64{{1, 2, 3, 4}, {5, 6}, {7}})
		if err := Map(tm, v, func(x float64) float64 { return 2 * x }, 1<<26); err != nil {
			t.Fatal(err)
		}
		sums, err := SegReduce(tm, v, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, s := range sums {
			total += s
		}
		return total
	}
	plain := runSum(core.AperiodicConstraints(50), omp.SyncBarrier, 154)
	rt := runSum(core.PeriodicConstraints(0, 200_000, 170_000), omp.SyncTimed, 155)
	if plain != 56 || rt != 56 {
		t.Fatalf("results differ: plain=%v rt=%v want 56", plain, rt)
	}
}

// Property: Scan equals the sequential exclusive prefix sum for arbitrary
// data and worker counts.
func TestPropertyScanCorrect(t *testing.T) {
	f := func(seed uint64, nRaw, wRaw uint8) bool {
		n := int(nRaw%64) + 1
		workers := int(wRaw%6) + 1
		rng := sim.NewRand(seed)
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(rng.Intn(100))
		}
		spec := machine.PhiKNL().Scaled(workers + 1)
		m := machine.New(spec, seed)
		k := core.Boot(m, core.DefaultConfig(spec))
		tm := omp.MustNewTeam(k, omp.Config{Workers: workers, FirstCPU: 1,
			Constraints: core.AperiodicConstraints(50), Sync: omp.SyncBarrier})
		v := &SegVector{Data: append([]float64(nil), data...), Lens: []int{n}}
		if err := Scan(tm, v, 1<<26); err != nil {
			return false
		}
		acc := 0.0
		for i := range data {
			if v.Data[i] != acc {
				return false
			}
			acc += data[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ChunkOf and ChunkBounds agree for all (i, n, workers).
func TestPropertyChunkingConsistent(t *testing.T) {
	spec := machine.PhiKNL().Scaled(9)
	m := machine.New(spec, 1)
	k := core.Boot(m, core.DefaultConfig(spec))
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw%500) + 1
		w := int(wRaw%8) + 1
		tm := omp.MustNewTeam(k, omp.Config{Workers: w, FirstCPU: 1,
			Constraints: core.AperiodicConstraints(50), Sync: omp.SyncBarrier})
		covered := 0
		for ww := 0; ww < w; ww++ {
			lo, hi := tm.ChunkBounds(ww, n)
			covered += hi - lo
			for i := lo; i < hi; i++ {
				if tm.ChunkOf(i, n) != ww {
					return false
				}
			}
		}
		return covered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
