package hrtsched

// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (Figures 3-16) and one per ablation from DESIGN.md. Each
// benchmark regenerates its figure at the Quick preset — identical code
// paths to the paper-scale run, reduced grid — and reports the figure's
// headline quantity as a custom metric. Regenerate at paper scale with:
//
//	go run ./cmd/hrtbench -fig N -full
import (
	"strconv"
	"strings"
	"testing"

	"hrtsched/internal/experiments"
	"hrtsched/internal/plan"
	"hrtsched/internal/stats"
)

func benchOpts(i int) experiments.Options {
	return experiments.Options{
		Scale:   experiments.Quick,
		Seed:    0xbe9c + uint64(i),
		Workers: 4,
	}
}

// runFig runs an experiment once per benchmark iteration and returns the
// last figure for metric extraction.
func runFig(b *testing.B, id string) *stats.Figure {
	b.Helper()
	var fig *stats.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Run(id, benchOpts(i))
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

func seriesMean(fig *stats.Figure, si int) float64 {
	var s stats.Summary
	for _, p := range fig.Series[si].Points {
		s.Add(p.Y)
	}
	return s.Mean()
}

func BenchmarkFig03TimeSync(b *testing.B) {
	fig := runFig(b, "fig3")
	// Worst residual bucket edge with nonzero population.
	var worst float64
	for _, p := range fig.Series[0].Points {
		if p.Y > 0 && p.X > worst {
			worst = p.X
		}
	}
	b.ReportMetric(worst, "worst-bucket-cycles")
}

func BenchmarkFig04Scope(b *testing.B) {
	fig := runFig(b, "fig4")
	b.ReportMetric(fig.Series[0].Points[0].Err*1000, "thread-period-fuzz-ns")
	b.ReportMetric(fig.Series[2].Points[1].Err*1000, "irq-width-fuzz-ns")
}

func BenchmarkFig05Overheads(b *testing.B) {
	fig := runFig(b, "fig5")
	var phi, r415 float64
	for _, p := range fig.Series[0].Points {
		phi += p.Y
	}
	for _, p := range fig.Series[1].Points {
		r415 += p.Y
	}
	b.ReportMetric(phi, "phi-total-cycles")
	b.ReportMetric(r415, "r415-total-cycles")
}

// missEdge extracts the feasibility-edge period (us) from a miss-rate
// figure's note line.
func missEdge(fig *stats.Figure) float64 {
	for _, n := range fig.Notes {
		if !strings.Contains(n, "edge of feasibility") {
			continue
		}
		for _, f := range strings.Fields(n) {
			if v, err := strconv.ParseFloat(f, 64); err == nil && v > 0 {
				return v
			}
		}
	}
	return 0
}

func BenchmarkFig06MissRatePhi(b *testing.B) {
	fig := runFig(b, "fig6")
	b.ReportMetric(missEdge(fig), "feasibility-edge-us")
}

func BenchmarkFig07MissRateR415(b *testing.B) {
	fig := runFig(b, "fig7")
	b.ReportMetric(missEdge(fig), "feasibility-edge-us")
}

func BenchmarkFig08MissTimePhi(b *testing.B) {
	fig := runFig(b, "fig8")
	var worst float64
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y > worst {
				worst = p.Y
			}
		}
	}
	b.ReportMetric(worst, "worst-mean-miss-us")
}

func BenchmarkFig09MissTimeR415(b *testing.B) {
	fig := runFig(b, "fig9")
	var worst float64
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Y > worst {
				worst = p.Y
			}
		}
	}
	b.ReportMetric(worst, "worst-mean-miss-us")
}

func BenchmarkFig10GroupAdmission(b *testing.B) {
	fig := runFig(b, "fig10")
	for _, s := range fig.Series {
		if s.Label == "group change constraints (avg)" && len(s.Points) > 0 {
			b.ReportMetric(s.Points[len(s.Points)-1].Y, "admit-cycles-at-max-size")
		}
	}
}

func BenchmarkFig11GroupSync8(b *testing.B) {
	fig := runFig(b, "fig11")
	b.ReportMetric(seriesMean(fig, 0), "mean-spread-cycles")
}

func BenchmarkFig12GroupSyncScale(b *testing.B) {
	fig := runFig(b, "fig12")
	b.ReportMetric(seriesMean(fig, 0), "smallest-group-spread-cycles")
	b.ReportMetric(seriesMean(fig, len(fig.Series)-1), "largest-group-spread-cycles")
}

func throttleFlatness(fig *stats.Figure) float64 {
	var s stats.Summary
	for _, p := range fig.Series[0].Points {
		s.Add(p.X * p.Y) // T*u, should be flat
	}
	if s.Mean() == 0 {
		return 0
	}
	return s.Std() / s.Mean()
}

func BenchmarkFig13ThrottleCoarse(b *testing.B) {
	fig := runFig(b, "fig13")
	b.ReportMetric(throttleFlatness(fig), "Tu-cov")
}

func BenchmarkFig14ThrottleFine(b *testing.B) {
	fig := runFig(b, "fig14")
	b.ReportMetric(throttleFlatness(fig), "Tu-cov")
}

func barrierWinFraction(fig *stats.Figure) float64 {
	above, total := 0, 0
	for _, p := range fig.Series[0].Points {
		total++
		if p.Y > p.X {
			above++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(above) / float64(total)
}

func BenchmarkFig15BarrierCoarse(b *testing.B) {
	fig := runFig(b, "fig15")
	b.ReportMetric(barrierWinFraction(fig), "fraction-faster-without-barrier")
}

func BenchmarkFig16BarrierFine(b *testing.B) {
	fig := runFig(b, "fig16")
	b.ReportMetric(barrierWinFraction(fig), "fraction-faster-without-barrier")
}

func BenchmarkAblationEagerVsLazy(b *testing.B) {
	fig := runFig(b, "ablation-eager")
	eager := fig.Series[0].Points
	lazy := fig.Series[1].Points
	b.ReportMetric(eager[len(eager)-1].Y, "eager-missrate-pct")
	b.ReportMetric(lazy[len(lazy)-1].Y, "lazy-missrate-pct")
}

func BenchmarkAblationPhaseCorrection(b *testing.B) {
	fig := runFig(b, "ablation-phase")
	raw := fig.Series[0].Points
	cor := fig.Series[1].Points
	b.ReportMetric(raw[len(raw)-1].Y, "uncorrected-spread-cycles")
	b.ReportMetric(cor[len(cor)-1].Y, "corrected-spread-cycles")
}

func BenchmarkAblationRMvsEDF(b *testing.B) {
	fig := runFig(b, "ablation-rm")
	b.ReportMetric(seriesMean(fig, 0), "edf-admitted-mean")
	b.ReportMetric(seriesMean(fig, 1), "rm-admitted-mean")
}

func BenchmarkAblationInterruptSteering(b *testing.B) {
	fig := runFig(b, "ablation-steering")
	unfiltered := fig.Series[0].Points
	free := fig.Series[2].Points
	b.ReportMetric(unfiltered[len(unfiltered)-1].Y, "unfiltered-missrate-pct")
	b.ReportMetric(free[len(free)-1].Y, "free-missrate-pct")
}

func BenchmarkAblationStealPolicy(b *testing.B) {
	fig := runFig(b, "ablation-steal")
	pts := fig.Series[0].Points
	b.ReportMetric(pts[0].Y, "p2c-makespan-ms")
	b.ReportMetric(pts[len(pts)-1].Y, "nosteal-makespan-ms")
}

func BenchmarkExtCyclicExecutive(b *testing.B) {
	fig := runFig(b, "ext-cyclic")
	pts := fig.Series[0].Points
	b.ReportMetric(pts[0].Y, "edf-invocations-per-ms")
	b.ReportMetric(pts[1].Y, "cyclic-invocations-per-ms")
}

func BenchmarkExtOMPRuntime(b *testing.B) {
	fig := runFig(b, "ext-omp")
	gangBar := fig.Series[1].Points
	gangTimed := fig.Series[2].Points
	b.ReportMetric(gangBar[0].Y, "gang-barrier-fine-ms")
	b.ReportMetric(gangTimed[0].Y, "gang-timed-fine-ms")
}

func BenchmarkAblationAdmitSim(b *testing.B) {
	fig := runFig(b, "ablation-admitsim")
	countMissing := func(si int) (n float64) {
		for _, p := range fig.Series[si].Points {
			if p.Y > 0 {
				n++
			}
		}
		return n
	}
	b.ReportMetric(countMissing(0), "bound-admitted-but-missing")
	b.ReportMetric(countMissing(1), "sim-admitted-but-missing")
}

func BenchmarkExtIsolation(b *testing.B) {
	fig := runFig(b, "ext-isolation")
	holds := 0.0
	for _, n := range fig.Notes {
		if strings.Contains(n, "ISOLATION HOLDS") {
			holds = 1
		}
	}
	b.ReportMetric(holds, "isolation-holds")
	b.ReportMetric(fig.Series[0].Points[2].Y, "legion-tasks-done")
}

// incrementalBenchSet builds the 64-task harmonic baseline used by the
// incremental-vs-full delta benchmarks: periods over {100,200,400,800} us
// (hyperperiod 800 us, ~240 jobs per full simulation) with small distinct
// slices so the whole set admits with headroom for one more task.
func incrementalBenchSet() (plan.Spec, plan.TaskSet, plan.Task) {
	spec := plan.Spec{OverheadNs: 200, UtilizationLimit: 0.99}
	periods := []int64{100_000, 200_000, 400_000, 800_000}
	var set plan.TaskSet
	for i := 0; i < 64; i++ {
		p := periods[i%len(periods)]
		set = append(set, plan.Task{PeriodNs: p, SliceNs: p/128 + int64(i)})
	}
	delta := plan.Task{PeriodNs: 400_000, SliceNs: 500}
	return spec, set, delta
}

// BenchmarkIncrementalSingleTaskDelta measures the retained-state path:
// one add plus one remove of a dividing-period task against a committed
// 64-task set, each answered by patching the demand decomposition.
func BenchmarkIncrementalSingleTaskDelta(b *testing.B) {
	spec, set, delta := incrementalBenchSet()
	inc := plan.NewIncremental(spec)
	if v := inc.TryGang(set); !v.Admit {
		b.Fatalf("baseline set rejected: %+v", v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := inc.Add(delta); !v.Admit {
			b.Fatalf("delta rejected: %+v", v)
		}
		if _, found := inc.Remove(delta); !found {
			b.Fatal("delta not found for removal")
		}
	}
	b.StopTimer()
	if inc.Stats().IncrementalOps == 0 {
		b.Fatalf("deltas never took the incremental path: %+v", inc.Stats())
	}
}

// BenchmarkFullReanalysisSingleTaskDelta is the same decision answered the
// stateless way: a full Analyze of all 65 tasks per delta.
func BenchmarkFullReanalysisSingleTaskDelta(b *testing.B) {
	spec, set, delta := incrementalBenchSet()
	candidate := append(append(plan.TaskSet{}, set...), delta)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := plan.Analyze(spec, candidate); !v.Admit {
			b.Fatalf("candidate rejected: %+v", v)
		}
	}
}

// TestIncrementalSpeedupAtLeast10x is the tentpole's performance
// acceptance bar: a single-task delta against a committed 64-task set
// must be at least 10x cheaper through plan.Incremental than through a
// full re-analysis — even though the incremental side is charged two
// mutations (add + remove) per iteration against the full side's one.
func TestIncrementalSpeedupAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison, skipped in -short")
	}
	incr := testing.Benchmark(BenchmarkIncrementalSingleTaskDelta)
	full := testing.Benchmark(BenchmarkFullReanalysisSingleTaskDelta)
	if incr.N == 0 || incr.NsPerOp() == 0 {
		t.Fatalf("incremental benchmark did not run: %+v", incr)
	}
	ratio := float64(full.NsPerOp()) / float64(incr.NsPerOp())
	t.Logf("full %v/op, incremental %v/op: %.1fx", full.NsPerOp(), incr.NsPerOp(), ratio)
	if ratio < 10 {
		t.Fatalf("incremental speedup %.1fx < 10x (full %dns/op, incremental %dns/op)",
			ratio, full.NsPerOp(), incr.NsPerOp())
	}
}
